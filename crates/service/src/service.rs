//! The routing service proper: sessions, query lifecycle, subscriptions.
//!
//! [`RoutingService`] wraps one resident [`RoutingHarness`] (topology +
//! deployed queries) and multiplexes any number of client *sessions* over
//! it. It is transport-agnostic and single-threaded: transports decode
//! frames into [`Request`]s, feed them through [`RoutingService::apply`],
//! and drain each session's bounded outbox of push [`Response`]s
//! (`Delta` / `Lagged`). All backpressure policy lives here — a transport
//! is a dumb frame carrier.
//!
//! ## Ownership and lifecycle
//!
//! A session owns the queries it issues: only the owner may tear one down
//! or inject facts into it, and a per-session quota caps how many live
//! queries a session may hold. When a session disconnects (or its
//! connection drops), every query it still owns is torn down across the
//! deployment — the service equivalent of a crashing client not leaking
//! dataflows into the engine forever.
//!
//! ## Subscriptions and backpressure
//!
//! A subscription is a [`ResultCursor`] polled after every time advance.
//! Deltas queue in the owning session's outbox, bounded by
//! [`ServiceConfig::subscriber_queue_cap`]. When the outbox is full the
//! cursor is simply *not advanced* — the unseen changes coalesce inside
//! the cursor (memory stays bounded by the result-set size, not the
//! update history) and a [`Response::Lagged`] with the number of skipped
//! polls precedes the next delta once the subscriber catches up.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use dr_core::{ExplainError, NetMsg, QueryId, ResultCursor, RoutingHarness};
use dr_datalog::parse_program;
use dr_netsim::{SimDuration, Topology};
use dr_types::NodeId;

use crate::protocol::{flatten_tree, ErrorCode, IssueOptions, Request, Response, WireTuple};

/// Tuning knobs of a [`RoutingService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum live queries a single session may own at once.
    pub max_queries_per_session: usize,
    /// Maximum queued push responses (deltas/lags) per session before the
    /// service stops advancing that session's cursors.
    pub subscriber_queue_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig { max_queries_per_session: 64, subscriber_queue_cap: 256 }
    }
}

/// One subscription: a cursor plus the number of polls skipped while the
/// session's outbox was full.
#[derive(Debug)]
struct Subscription {
    cursor: ResultCursor,
    missed: u64,
}

/// Per-session state.
#[derive(Debug)]
struct Session {
    client: String,
    /// Queries this session issued and still owns.
    queries: BTreeSet<QueryId>,
    /// Subscriptions, keyed by query (one cursor per query per session).
    subs: BTreeMap<QueryId, Subscription>,
    /// Queued push responses awaiting transport drain.
    outbox: VecDeque<Response>,
}

/// Aggregate service counters (exposed via `Stats` and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Sessions opened over the service's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed (disconnected).
    pub sessions_closed: u64,
    /// Queries issued.
    pub queries_issued: u64,
    /// Queries torn down (explicitly or at disconnect).
    pub queries_torn_down: u64,
    /// Facts injected via `InjectFacts`.
    pub facts_injected: u64,
    /// Requests that produced an error response.
    pub errors: u64,
}

/// A long-lived routing service: one resident deployment, many sessions.
pub struct RoutingService {
    harness: RoutingHarness,
    config: ServiceConfig,
    sessions: BTreeMap<u64, Session>,
    /// Owner of each live query.
    owners: BTreeMap<QueryId, u64>,
    next_session: u64,
    counters: ServiceCounters,
    shutdown_requested: bool,
}

impl RoutingService {
    /// Build a service over `topology` with `config`.
    pub fn new(topology: Topology, config: ServiceConfig) -> RoutingService {
        RoutingService {
            harness: RoutingHarness::new(topology),
            config,
            sessions: BTreeMap::new(),
            owners: BTreeMap::new(),
            next_session: 1,
            counters: ServiceCounters::default(),
            shutdown_requested: false,
        }
    }

    /// The resident harness (tests compare against a single-harness oracle).
    pub fn harness(&self) -> &RoutingHarness {
        &self.harness
    }

    /// Mutable access to the resident harness — the escape hatch embedders
    /// use to schedule simulator events (churn, link dynamics) that have no
    /// wire request.
    pub fn harness_mut(&mut self) -> &mut RoutingHarness {
        &mut self.harness
    }

    /// Aggregate lifetime counters.
    pub fn counters(&self) -> ServiceCounters {
        self.counters
    }

    /// True once a client asked the service to shut down.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of currently live queries across all sessions.
    pub fn live_queries(&self) -> usize {
        self.owners.len()
    }

    /// Open a session. The transport calls this on `Request::Connect`.
    pub fn connect(&mut self, client: &str) -> (u64, Response) {
        let sid = self.next_session;
        self.next_session += 1;
        self.sessions.insert(
            sid,
            Session {
                client: client.to_string(),
                queries: BTreeSet::new(),
                subs: BTreeMap::new(),
                outbox: VecDeque::new(),
            },
        );
        self.counters.sessions_opened += 1;
        let resp = Response::Connected {
            session: sid,
            nodes: self.harness.sim().topology().num_nodes() as u32,
            now_millis: self.harness.now().as_millis_f64() as u64,
        };
        (sid, resp)
    }

    /// Close a session, tearing down every query it still owns.
    pub fn disconnect(&mut self, sid: u64) {
        let Some(session) = self.sessions.remove(&sid) else { return };
        self.counters.sessions_closed += 1;
        for qid in session.queries {
            self.owners.remove(&qid);
            let at = self.harness.now();
            self.harness.teardown(qid, at);
            self.counters.queries_torn_down += 1;
        }
    }

    /// Apply one request on behalf of session `sid` and return the direct
    /// response. Push responses (deltas) go to the session outbox instead.
    pub fn apply(&mut self, sid: u64, req: Request) -> Response {
        if !self.sessions.contains_key(&sid) {
            return self.error(ErrorCode::NotConnected, "no such session");
        }
        match req {
            Request::Connect { .. } => {
                self.error(ErrorCode::BadRequest, "session already connected")
            }
            Request::IssueQuery { program, options } => self.issue(sid, &program, options),
            Request::TeardownQuery { qid } => self.teardown(sid, qid),
            Request::InjectFacts { qid, node, facts } => self.inject(sid, qid, node, &facts),
            Request::Subscribe { qid } => self.subscribe(sid, qid),
            Request::Stats => Response::Stats { lines: self.stats_lines() },
            Request::Advance { millis } => {
                self.advance(SimDuration::from_millis(millis));
                Response::Advanced { now_millis: self.harness.now().as_millis_f64() as u64 }
            }
            Request::Shutdown => {
                self.shutdown_requested = true;
                Response::ShuttingDown
            }
            Request::Explain { qid, tuple } => self.explain(qid, &tuple),
        }
    }

    fn error(&mut self, code: ErrorCode, message: impl Into<String>) -> Response {
        self.counters.errors += 1;
        Response::Error { code, message: message.into() }
    }

    fn issue(&mut self, sid: u64, program: &str, options: IssueOptions) -> Response {
        let session = self.sessions.get(&sid).expect("checked by apply");
        if session.queries.len() >= self.config.max_queries_per_session {
            let cap = self.config.max_queries_per_session;
            return self.error(
                ErrorCode::QuotaExceeded,
                format!("session already owns {cap} live queries"),
            );
        }
        let issuer = NodeId::new(options.issuer);
        if options.issuer as usize >= self.harness.sim().topology().num_nodes() {
            return self.error(
                ErrorCode::BadRequest,
                format!("issuer node {} outside the topology", options.issuer),
            );
        }
        let parsed = match parse_program(program) {
            Ok(p) => p,
            Err(e) => return self.error(ErrorCode::Parse, e.to_string()),
        };
        let at = self.harness.now();
        let submitted = self
            .harness
            .issue(parsed)
            .from(issuer)
            .at(at)
            .named(&options.name)
            .replicated(options.replicated.iter().map(String::as_str))
            .aggregate_selections(options.aggregate_selections)
            .sharing(options.share_results)
            .cache_relation(&options.cache_relation)
            .facts(options.facts.iter().map(WireTuple::to_tuple).collect())
            .provenance(options.record_provenance)
            .submit();
        match submitted {
            Ok(handle) => {
                let qid = handle.id();
                self.sessions.get_mut(&sid).expect("checked").queries.insert(qid);
                self.owners.insert(qid, sid);
                self.counters.queries_issued += 1;
                Response::Issued { qid }
            }
            Err(e) => self.error(ErrorCode::Parse, e.to_string()),
        }
    }

    fn teardown(&mut self, sid: u64, qid: QueryId) -> Response {
        match self.owners.get(&qid) {
            None => self.error(ErrorCode::UnknownQuery, format!("no live query {qid}")),
            Some(&owner) if owner != sid => {
                self.error(ErrorCode::NotOwner, format!("query {qid} belongs to session {owner}"))
            }
            Some(_) => {
                self.owners.remove(&qid);
                let session = self.sessions.get_mut(&sid).expect("checked by apply");
                session.queries.remove(&qid);
                let at = self.harness.now();
                self.harness.teardown(qid, at);
                self.counters.queries_torn_down += 1;
                Response::TornDown { qid }
            }
        }
    }

    fn inject(&mut self, sid: u64, qid: QueryId, node: u32, facts: &[WireTuple]) -> Response {
        match self.owners.get(&qid) {
            None => self.error(ErrorCode::UnknownQuery, format!("no live query {qid}")),
            Some(&owner) if owner != sid => {
                self.error(ErrorCode::NotOwner, format!("query {qid} belongs to session {owner}"))
            }
            Some(_) => {
                if node as usize >= self.harness.sim().topology().num_nodes() {
                    return self
                        .error(ErrorCode::BadRequest, format!("node {node} outside the topology"));
                }
                let items: Vec<_> = facts.iter().map(WireTuple::to_tuple).collect();
                let count = items.len() as u32;
                let at = self.harness.now();
                self.harness.sim_mut().inject(
                    at,
                    NodeId::new(node),
                    NetMsg::Tuples { qid, seq: None, items, provs: Vec::new() },
                );
                self.counters.facts_injected += u64::from(count);
                Response::Injected { qid, count }
            }
        }
    }

    /// Materialize a derivation tree. Explanations are read-only, so any
    /// connected session may ask about any live query (not just its own);
    /// the harness types the failure modes — unknown/torn-down queries and
    /// tuples nobody stores come back as errors, never a wedge or a panic.
    fn explain(&mut self, qid: QueryId, tuple: &WireTuple) -> Response {
        let t = tuple.to_tuple();
        match self.harness.explain(qid, &t) {
            Ok(tree) => Response::Explanation { qid, nodes: flatten_tree(&tree) },
            Err(e @ (ExplainError::UnknownQuery | ExplainError::TornDown)) => {
                self.error(ErrorCode::UnknownQuery, e.to_string())
            }
            Err(e) => self.error(ErrorCode::BadRequest, e.to_string()),
        }
    }

    fn subscribe(&mut self, sid: u64, qid: QueryId) -> Response {
        if !self.owners.contains_key(&qid) {
            return self.error(ErrorCode::UnknownQuery, format!("no live query {qid}"));
        }
        let session = self.sessions.get_mut(&sid).expect("checked by apply");
        session.subs.insert(qid, Subscription { cursor: ResultCursor::new(qid), missed: 0 });
        Response::Subscribed { qid }
    }

    /// Advance simulated time and poll every subscription once.
    pub fn advance(&mut self, step: SimDuration) {
        let until = self.harness.now() + step;
        self.harness.run_until(until);
        self.poll_subscriptions();
    }

    /// Poll every subscription whose session outbox has room; count a
    /// missed round for the ones that don't.
    fn poll_subscriptions(&mut self) {
        let cap = self.config.subscriber_queue_cap;
        let now_millis = self.harness.now().as_millis_f64() as u64;
        for session in self.sessions.values_mut() {
            for (&qid, sub) in session.subs.iter_mut() {
                if session.outbox.len() >= cap {
                    sub.missed += 1;
                    continue;
                }
                let delta = sub.cursor.poll(&self.harness);
                if sub.missed > 0 && !delta.is_empty() {
                    session.outbox.push_back(Response::Lagged { qid, missed: sub.missed });
                    sub.missed = 0;
                }
                if !delta.is_empty() {
                    session.outbox.push_back(Response::Delta {
                        qid,
                        now_millis,
                        added: delta.added.iter().map(WireTuple::from_tuple).collect(),
                        removed: delta.removed.iter().map(WireTuple::from_tuple).collect(),
                    });
                }
            }
        }
    }

    /// Pop up to `max` queued push responses for session `sid`. Transports
    /// call this with however much room they have; what stays queued keeps
    /// exerting backpressure on the session's cursors.
    pub fn drain_outbox(&mut self, sid: u64, max: usize) -> Vec<Response> {
        let Some(session) = self.sessions.get_mut(&sid) else { return Vec::new() };
        let n = session.outbox.len().min(max);
        session.outbox.drain(..n).collect()
    }

    /// Queued push responses for session `sid`.
    pub fn outbox_len(&self, sid: u64) -> usize {
        self.sessions.get(&sid).map_or(0, |s| s.outbox.len())
    }

    /// The line-oriented JSON stats snapshot: one self-describing object
    /// per line (`type` discriminates), so `grep`/`jq` pipelines can
    /// consume it without a streaming JSON parser.
    pub fn stats_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        let now_ms = self.harness.now().as_millis_f64();
        let c = &self.counters;
        lines.push(format!(
            "{{\"type\":\"service\",\"now_ms\":{now_ms:.1},\"sessions\":{},\"live_queries\":{},\
             \"sessions_opened\":{},\"queries_issued\":{},\"queries_torn_down\":{},\
             \"facts_injected\":{},\"errors\":{}}}",
            self.sessions.len(),
            self.owners.len(),
            c.sessions_opened,
            c.queries_issued,
            c.queries_torn_down,
            c.facts_injected,
            c.errors,
        ));
        let p = self.harness.processor_stats();
        lines.push(format!(
            "{{\"type\":\"processor\",\"tuples_received\":{},\"tuples_sent\":{},\
             \"tuples_derived\":{},\"tuples_pruned\":{},\"tombstones_collapsed\":{},\
             \"tuples_rejected\":{},\"prune_evicted\":{},\"batches\":{},\
             \"retransmits\":{},\"dups_dropped\":{},\"acks_sent\":{},\
             \"gaps_skipped\":{},\"prov_recorded\":{},\"prov_fetches\":{}}}",
            p.tuples_received,
            p.tuples_sent,
            p.tuples_derived,
            p.tuples_pruned,
            p.tombstones_collapsed,
            p.tuples_rejected,
            p.prune_evicted,
            p.batches,
            p.retransmits,
            p.dups_dropped,
            p.acks_sent,
            p.gaps_skipped,
            p.prov_recorded,
            p.prov_fetches,
        ));
        let f = self.harness.state_footprint();
        lines.push(format!(
            "{{\"type\":\"footprint\",\"instances\":{},\"stored_tuples\":{},\
             \"pending_tuples\":{},\"prune_entries\":{},\"shared_relations\":{},\
             \"shared_tuples\":{},\"prov_records\":{}}}",
            f.instances,
            f.stored_tuples,
            f.pending_tuples,
            f.prune_entries,
            f.shared_relations,
            f.shared_tuples,
            f.prov_records,
        ));
        lines.push(format!(
            "{{\"type\":\"overhead\",\"per_node_kb\":{:.3}}}",
            self.harness.per_node_overhead_kb()
        ));
        for (start, bytes_per_node_s) in self.harness.sim().metrics().per_node_bandwidth_series() {
            lines.push(format!(
                "{{\"type\":\"bandwidth\",\"t_s\":{:.1},\"bytes_per_node_s\":{:.1}}}",
                start.as_secs_f64(),
                bytes_per_node_s,
            ));
        }
        lines
    }

    /// The connected client names (diagnostics).
    pub fn client_names(&self) -> Vec<String> {
        self.sessions.values().map(|s| s.client.clone()).collect()
    }
}

/// A small deterministic topology for service defaults and examples: an
/// `n`-node ring of unit-cost links plus cross-ring chords every four
/// nodes, giving alternate paths so link updates and churn actually
/// reroute.
pub fn default_topology(n: usize) -> Topology {
    use dr_netsim::LinkParams;
    let n = n.max(2);
    let mut topo = Topology::new(n);
    let link = || LinkParams::with_latency_ms(5.0).with_cost(dr_types::Cost::new(1.0));
    for i in 0..n {
        let a = NodeId::new(i as u32);
        let b = NodeId::new(((i + 1) % n) as u32);
        topo.add_bidirectional(a, b, link());
    }
    for i in (0..n).step_by(4) {
        let far = (i + n / 2) % n;
        if far != i && !topo.has_link(NodeId::new(i as u32), NodeId::new(far as u32)) {
            topo.add_bidirectional(NodeId::new(i as u32), NodeId::new(far as u32), link());
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    const BEST_PATH: &str = crate::BEST_PATH_PROGRAM;

    fn service(nodes: usize) -> RoutingService {
        RoutingService::new(default_topology(nodes), ServiceConfig::default())
    }

    #[test]
    fn issue_advance_subscribe_teardown_lifecycle() {
        let mut svc = service(8);
        let (sid, resp) = svc.connect("t");
        assert!(matches!(resp, Response::Connected { nodes: 8, .. }));

        let resp = svc.apply(
            sid,
            Request::IssueQuery {
                program: BEST_PATH.to_string(),
                options: IssueOptions::default(),
            },
        );
        let Response::Issued { qid } = resp else { panic!("{resp:?}") };

        assert!(matches!(svc.apply(sid, Request::Subscribe { qid }), Response::Subscribed { .. }));
        svc.apply(sid, Request::Advance { millis: 10_000 });
        let pushed = svc.drain_outbox(sid, usize::MAX);
        assert!(
            pushed.iter().any(|r| matches!(r, Response::Delta { added, .. } if !added.is_empty())),
            "expected a non-empty delta, got {pushed:?}"
        );

        assert!(matches!(
            svc.apply(sid, Request::TeardownQuery { qid }),
            Response::TornDown { .. }
        ));
        svc.apply(sid, Request::Advance { millis: 10_000 });
        assert_eq!(svc.live_queries(), 0);
        assert!(svc.harness().state_footprint().is_empty());
    }

    #[test]
    fn explain_round_trip_and_typed_failures() {
        let mut svc = service(8);
        let (sid, _) = svc.connect("explainer");

        // Unknown query: typed error, not a wedge.
        let bogus = WireTuple { relation: "bestPath".into(), values: vec![] };
        assert!(matches!(
            svc.apply(sid, Request::Explain { qid: 123, tuple: bogus.clone() }),
            Response::Error { code: ErrorCode::UnknownQuery, .. }
        ));

        // A query issued *without* provenance recording is a BadRequest.
        let Response::Issued { qid: plain } = svc.apply(
            sid,
            Request::IssueQuery {
                program: BEST_PATH.to_string(),
                options: IssueOptions::default(),
            },
        ) else {
            panic!("issue failed")
        };
        svc.apply(sid, Request::Advance { millis: 5_000 });
        assert!(matches!(
            svc.apply(sid, Request::Explain { qid: plain, tuple: bogus.clone() }),
            Response::Error { code: ErrorCode::BadRequest, .. }
        ));

        // With recording on, a derived route explains into a rebuildable
        // flat tree whose root is the asked-about tuple.
        let Response::Issued { qid } = svc.apply(
            sid,
            Request::IssueQuery {
                program: BEST_PATH.to_string(),
                options: IssueOptions { record_provenance: true, ..IssueOptions::default() },
            },
        ) else {
            panic!("issue failed")
        };
        svc.apply(sid, Request::Subscribe { qid });
        svc.apply(sid, Request::Advance { millis: 10_000 });
        let route = svc
            .drain_outbox(sid, usize::MAX)
            .into_iter()
            .find_map(|r| match r {
                Response::Delta { added, .. } => added.into_iter().find(|t| {
                    t.values
                        .iter()
                        .any(|v| matches!(v, crate::protocol::WireValue::Cost(c) if c.is_finite()))
                }),
                _ => None,
            })
            .expect("a finite route was pushed");
        let resp = svc.apply(sid, Request::Explain { qid, tuple: route.clone() });
        let Response::Explanation { qid: got, nodes } = resp else { panic!("{resp:?}") };
        assert_eq!(got, qid);
        let tree = crate::protocol::tree_from_flat(&nodes).expect("well-formed flat tree");
        assert_eq!(tree.tuple(), &route.to_tuple());
        assert!(tree.is_fully_resolved(), "{tree}");

        // After teardown the same request is typed UnknownQuery.
        svc.apply(sid, Request::TeardownQuery { qid });
        svc.apply(sid, Request::Advance { millis: 10_000 });
        assert!(matches!(
            svc.apply(sid, Request::Explain { qid, tuple: route }),
            Response::Error { code: ErrorCode::UnknownQuery, .. }
        ));
        // Explain state does not outlive the query.
        assert_eq!(svc.harness().state_footprint().prov_records, 0);
    }

    #[test]
    fn quota_ownership_and_unknown_query_errors() {
        let mut svc = RoutingService::new(
            default_topology(4),
            ServiceConfig { max_queries_per_session: 1, ..ServiceConfig::default() },
        );
        let (alice, _) = svc.connect("alice");
        let (bob, _) = svc.connect("bob");
        let issue =
            |options: IssueOptions| Request::IssueQuery { program: BEST_PATH.to_string(), options };

        let Response::Issued { qid } = svc.apply(alice, issue(IssueOptions::default())) else {
            panic!("first issue must succeed")
        };
        assert!(matches!(
            svc.apply(alice, issue(IssueOptions::default())),
            Response::Error { code: ErrorCode::QuotaExceeded, .. }
        ));
        assert!(matches!(
            svc.apply(bob, Request::TeardownQuery { qid }),
            Response::Error { code: ErrorCode::NotOwner, .. }
        ));
        assert!(matches!(
            svc.apply(alice, Request::TeardownQuery { qid: 999 }),
            Response::Error { code: ErrorCode::UnknownQuery, .. }
        ));
        assert!(matches!(
            svc.apply(alice, Request::TeardownQuery { qid }),
            Response::TornDown { .. }
        ));
        // Teardown frees quota: a new issue succeeds.
        assert!(matches!(
            svc.apply(alice, issue(IssueOptions::default())),
            Response::Issued { .. }
        ));
    }

    #[test]
    fn disconnect_tears_down_owned_queries() {
        let mut svc = service(6);
        let (sid, _) = svc.connect("ephemeral");
        let Response::Issued { .. } = svc.apply(
            sid,
            Request::IssueQuery {
                program: BEST_PATH.to_string(),
                options: IssueOptions::default(),
            },
        ) else {
            panic!("issue failed")
        };
        svc.apply(sid, Request::Advance { millis: 5_000 });
        assert!(!svc.harness().state_footprint().is_empty());

        svc.disconnect(sid);
        // Time must keep flowing for the teardown flood to propagate; a
        // surviving session (or the server tick) provides that.
        let (other, _) = svc.connect("survivor");
        svc.apply(other, Request::Advance { millis: 10_000 });
        assert_eq!(svc.live_queries(), 0);
        assert!(svc.harness().state_footprint().is_empty());
    }

    #[test]
    fn slow_subscriber_lags_and_memory_stays_bounded() {
        let mut svc = RoutingService::new(
            default_topology(8),
            ServiceConfig { subscriber_queue_cap: 2, ..ServiceConfig::default() },
        );
        let (sid, _) = svc.connect("slow");
        let Response::Issued { qid } = svc.apply(
            sid,
            Request::IssueQuery {
                program: BEST_PATH.to_string(),
                options: IssueOptions::default(),
            },
        ) else {
            panic!("issue failed")
        };
        svc.apply(sid, Request::Subscribe { qid });
        svc.apply(sid, Request::Advance { millis: 10_000 });

        // Never drained: keep perturbing a link so every poll has changes.
        let link = |cost: f64| {
            dr_netsim::LinkParams::with_latency_ms(5.0).with_cost(dr_types::Cost::new(cost))
        };
        for round in 0..20u64 {
            let at = svc.harness().now();
            let cost = if round % 2 == 0 { 10.0 } else { 1.0 };
            svc.harness.sim_mut().schedule_link_metric_change(
                at,
                NodeId::new(0),
                NodeId::new(1),
                link(cost),
            );
            svc.apply(sid, Request::Advance { millis: 2_000 });
        }
        assert!(svc.outbox_len(sid) <= 2, "outbox must stay bounded");

        // Catching up yields a Lagged notice before the coalesced delta.
        let drained = svc.drain_outbox(sid, usize::MAX);
        let at = svc.harness().now();
        svc.harness.sim_mut().schedule_link_metric_change(
            at,
            NodeId::new(0),
            NodeId::new(1),
            link(3.0),
        );
        svc.apply(sid, Request::Advance { millis: 5_000 });
        let caught_up = svc.drain_outbox(sid, usize::MAX);
        let lagged = caught_up.iter().find_map(|r| match r {
            Response::Lagged { missed, .. } => Some(*missed),
            _ => None,
        });
        assert!(
            lagged.is_some_and(|m| m > 0),
            "expected Lagged after starved polls; drained={drained:?} caught_up={caught_up:?}"
        );
    }
}
