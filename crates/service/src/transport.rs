//! Frame transports: how encoded [`Request`]/[`Response`] frames travel.
//!
//! A transport is deliberately dumb — it moves opaque frames and reports
//! closure. All protocol decoding and backpressure policy live in
//! [`crate::service::RoutingService`] and the server loops.
//!
//! Two implementations:
//!
//! * [`InProcHub`] / [`InProcConn`] — a single-threaded, deterministic
//!   in-process transport. Frames still round-trip through the real byte
//!   codec, but delivery is synchronous queue shuffling, so tests can
//!   multiplex hundreds of sessions with reproducible interleavings and
//!   no real time.
//! * [`TcpTransport`] — a blocking `std::net` stream for clients of the
//!   [`crate::server`] daemon.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::rc::Rc;

use dr_netsim::Topology;

use crate::protocol::{frame, ErrorCode, FrameBuf, ProtoError, Request, Response};
use crate::service::{RoutingService, ServiceConfig};

/// Why a transport operation failed.
#[derive(Debug)]
pub enum TransportError {
    /// The peer closed the connection (or the server shut down).
    Closed,
    /// A frame failed the length-prefix discipline (e.g. oversized).
    Proto(ProtoError),
    /// An I/O error from the underlying socket.
    Io(std::io::Error),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Proto(e) => write!(f, "framing error: {e}"),
            TransportError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> TransportError {
        TransportError::Proto(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

/// A bidirectional frame pipe between a client and a service.
pub trait Transport {
    /// Send one frame payload (the transport adds the length prefix).
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), TransportError>;

    /// Receive the next frame payload, waiting for it.
    ///
    /// On the in-process transport "waiting" means pumping the service —
    /// if no frame can possibly arrive the call fails with
    /// [`TransportError::Closed`] rather than hanging.
    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Receive the next frame payload if one is already available.
    fn try_recv_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError>;
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

struct ConnState {
    /// Frames from the client awaiting service processing.
    from_client: VecDeque<Vec<u8>>,
    /// Frames for the client awaiting pickup.
    to_client: VecDeque<Vec<u8>>,
    /// The session this connection authenticated as (after `Connect`).
    session: Option<u64>,
    open: bool,
}

struct HubInner {
    service: RoutingService,
    conns: Vec<ConnState>,
    queue_cap: usize,
}

impl HubInner {
    /// Process every queued client frame, then distribute outbox pushes.
    fn pump(&mut self) {
        for id in 0..self.conns.len() {
            while let Some(payload) = self.conns[id].from_client.pop_front() {
                let reply = self.dispatch(id, &payload);
                let mut buf = Vec::new();
                reply.encode(&mut buf);
                self.conns[id].to_client.push_back(frame(&buf));
            }
        }
        // Closed connections give up their session (tearing down owned
        // queries) exactly once.
        for id in 0..self.conns.len() {
            if !self.conns[id].open {
                if let Some(sid) = self.conns[id].session.take() {
                    self.service.disconnect(sid);
                }
            }
        }
        self.distribute_outboxes();
    }

    fn dispatch(&mut self, id: usize, payload: &[u8]) -> Response {
        let req = match Request::decode(payload) {
            Ok(req) => req,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::BadRequest,
                    message: format!("malformed request: {e}"),
                }
            }
        };
        match (self.conns[id].session, req) {
            (None, Request::Connect { client }) => {
                let (sid, resp) = self.service.connect(&client);
                self.conns[id].session = Some(sid);
                resp
            }
            (None, _) => Response::Error {
                code: ErrorCode::NotConnected,
                message: "the first request must be Connect".to_string(),
            },
            (Some(sid), req) => self.service.apply(sid, req),
        }
    }

    /// Move queued push responses into per-connection delivery queues,
    /// while they have room. A full delivery queue leaves the rest in the
    /// session outbox — which is what makes the service's cursors stop
    /// advancing for that subscriber.
    fn distribute_outboxes(&mut self) {
        for conn in &mut self.conns {
            let Some(sid) = conn.session else { continue };
            let room = self.queue_cap.saturating_sub(conn.to_client.len());
            for resp in self.service.drain_outbox(sid, room) {
                let mut buf = Vec::new();
                resp.encode(&mut buf);
                conn.to_client.push_back(frame(&buf));
            }
        }
    }
}

/// A deterministic in-process service endpoint.
///
/// Cloning the hub clones a handle to the *same* service. Connections are
/// created with [`InProcHub::connect`]; everything is single-threaded and
/// synchronous: a [`Transport::send_frame`] pumps the service inline, so
/// by the time it returns the direct response is already queued.
#[derive(Clone)]
pub struct InProcHub {
    inner: Rc<RefCell<HubInner>>,
}

impl InProcHub {
    /// Start a service over `topology` and expose it in-process.
    pub fn new(topology: Topology, config: ServiceConfig) -> InProcHub {
        let queue_cap = config.subscriber_queue_cap;
        InProcHub {
            inner: Rc::new(RefCell::new(HubInner {
                service: RoutingService::new(topology, config),
                conns: Vec::new(),
                queue_cap,
            })),
        }
    }

    /// Open a new (not yet connected) transport to the service.
    pub fn connect(&self) -> InProcConn {
        let mut inner = self.inner.borrow_mut();
        let id = inner.conns.len();
        inner.conns.push(ConnState {
            from_client: VecDeque::new(),
            to_client: VecDeque::new(),
            session: None,
            open: true,
        });
        InProcConn { hub: Rc::clone(&self.inner), id }
    }

    /// Process queued frames and distribute pushes (normally implicit in
    /// every send/recv; explicit for tests that dropped a connection).
    pub fn pump(&self) {
        self.inner.borrow_mut().pump();
    }

    /// Run `f` against the underlying service (inspection and scheduling
    /// of simulator events in tests and load drivers).
    pub fn with_service<R>(&self, f: impl FnOnce(&mut RoutingService) -> R) -> R {
        f(&mut self.inner.borrow_mut().service)
    }
}

/// One in-process connection. Dropping it closes the session (the service
/// tears down every query the session still owns on the next pump).
pub struct InProcConn {
    hub: Rc<RefCell<HubInner>>,
    id: usize,
}

impl Transport for InProcConn {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        let mut inner = self.hub.borrow_mut();
        if !inner.conns[self.id].open {
            return Err(TransportError::Closed);
        }
        inner.conns[self.id].from_client.push_back(payload.to_vec());
        inner.pump();
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let mut inner = self.hub.borrow_mut();
        inner.pump();
        match inner.conns[self.id].to_client.pop_front() {
            // Strip the length prefix the queue kept for wire fidelity.
            Some(framed) => Ok(framed[4..].to_vec()),
            // Synchronous transport: nothing queued means nothing will
            // ever arrive without another request.
            None => Err(TransportError::Closed),
        }
    }

    fn try_recv_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        let mut inner = self.hub.borrow_mut();
        inner.pump();
        Ok(inner.conns[self.id].to_client.pop_front().map(|framed| framed[4..].to_vec()))
    }
}

impl Drop for InProcConn {
    fn drop(&mut self) {
        let mut inner = self.hub.borrow_mut();
        inner.conns[self.id].open = false;
        inner.pump();
    }
}

// ---------------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------------

/// A blocking TCP frame transport (the client side of [`crate::server`]).
pub struct TcpTransport {
    stream: TcpStream,
    buf: FrameBuf,
    scratch: [u8; 64 * 1024],
}

impl TcpTransport {
    /// Connect to a `dr-serviced` endpoint, e.g. `"127.0.0.1:7117"`.
    pub fn dial(addr: &str) -> Result<TcpTransport, TransportError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(TcpTransport { stream, buf: FrameBuf::new(), scratch: [0; 64 * 1024] })
    }

    /// Wrap an already-connected stream (the server's per-connection side).
    pub fn from_stream(stream: TcpStream) -> TcpTransport {
        stream.set_nodelay(true).ok();
        TcpTransport { stream, buf: FrameBuf::new(), scratch: [0; 64 * 1024] }
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.stream.write_all(&frame(payload))?;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        loop {
            if let Some(payload) = self.buf.next_frame()? {
                return Ok(payload);
            }
            let n = self.stream.read(&mut self.scratch)?;
            if n == 0 {
                return Err(TransportError::Closed);
            }
            self.buf.extend(&self.scratch[..n]);
        }
    }

    fn try_recv_frame(&mut self) -> Result<Option<Vec<u8>>, TransportError> {
        if let Some(payload) = self.buf.next_frame()? {
            return Ok(Some(payload));
        }
        self.stream.set_nonblocking(true)?;
        let read = self.stream.read(&mut self.scratch);
        self.stream.set_nonblocking(false)?;
        match read {
            Ok(0) => Err(TransportError::Closed),
            Ok(n) => {
                self.buf.extend(&self.scratch[..n]);
                self.buf.next_frame().map_err(TransportError::from)
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(TransportError::Io(e)),
        }
    }
}
