//! `dr-serviced` — the long-lived routing service daemon.
//!
//! Binds a TCP endpoint, keeps a resident topology and its query
//! deployment alive, and serves the framed request/response protocol.
//! Shut it down with `dr-load --shutdown`, any client sending a
//! `Shutdown` request, or SIGTERM-by-way-of-kill (the process holds no
//! on-disk state).
//!
//! ```text
//! dr-serviced [--addr 127.0.0.1:7117] [--nodes 16] [--tick-ms 10]
//!             [--step-ms 200] [--quota 64] [--queue-cap 256]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use dr_netsim::SimDuration;
use dr_service::service::default_topology;
use dr_service::{serve, ServerConfig, ServiceConfig};

struct Args {
    addr: String,
    nodes: usize,
    tick_ms: u64,
    step_ms: u64,
    quota: usize,
    queue_cap: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7117".to_string(),
        nodes: 16,
        tick_ms: 10,
        step_ms: 200,
        quota: 64,
        queue_cap: 256,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--nodes" => args.nodes = parse("--nodes", &value("--nodes")?)?,
            "--tick-ms" => args.tick_ms = parse("--tick-ms", &value("--tick-ms")?)?,
            "--step-ms" => args.step_ms = parse("--step-ms", &value("--step-ms")?)?,
            "--quota" => args.quota = parse("--quota", &value("--quota")?)?,
            "--queue-cap" => args.queue_cap = parse("--queue-cap", &value("--queue-cap")?)?,
            "--help" | "-h" => {
                println!(
                    "usage: dr-serviced [--addr HOST:PORT] [--nodes N] [--tick-ms MS] \
                     [--step-ms MS] [--quota N] [--queue-cap N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{name}: cannot parse {raw:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("dr-serviced: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        service: ServiceConfig {
            max_queries_per_session: args.quota,
            subscriber_queue_cap: args.queue_cap,
        },
        tick: Duration::from_millis(args.tick_ms.max(1)),
        step: SimDuration::from_millis(args.step_ms.max(1)),
    };
    let topology = default_topology(args.nodes);
    let handle = match serve(&args.addr, topology, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("dr-serviced: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("dr-serviced listening on {} ({} nodes)", handle.addr(), args.nodes);
    handle.join();
    println!("dr-serviced: shut down cleanly");
    ExitCode::SUCCESS
}
