//! `dr-load` — seeded load generator for `dr-serviced`.
//!
//! Opens N sessions, holds each at a target number of live queries with a
//! deterministic issue/teardown/fact-update mix, subscribes to result
//! streams, and prints a throughput report plus the server's stats
//! snapshot. With `--inproc` it runs the same mix against a fresh
//! in-process service (no daemon required); with `--shutdown` it asks the
//! server to exit cleanly after the run — which is how CI stops the smoke
//! deployment.
//!
//! With `--explain` the tail session also issues a provenance-recording
//! query, waits for a route, and asks the server to `Explain` it — an
//! end-to-end smoke of the provenance subsystem.
//!
//! ```text
//! dr-load [--addr 127.0.0.1:7117 | --inproc] [--sessions 8] [--rounds 24]
//!         [--queries 2] [--step-ms 400] [--seed 7] [--nodes 16]
//!         [--churn] [--explain] [--shutdown]
//! ```

use std::process::ExitCode;

use dr_netsim::{SimDuration, SimTime};
use dr_service::load::{explain_probe, run, run_inproc, LoadOptions};
use dr_service::{Backoff, Client, TcpTransport};
use dr_workloads::ChurnSchedule;

struct Args {
    addr: String,
    inproc: bool,
    nodes: usize,
    churn: bool,
    explain: bool,
    shutdown: bool,
    opts: LoadOptions,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7117".to_string(),
        inproc: false,
        nodes: 16,
        churn: false,
        explain: false,
        shutdown: false,
        opts: LoadOptions::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--inproc" => args.inproc = true,
            "--nodes" => args.nodes = parse("--nodes", &value("--nodes")?)?,
            "--churn" => args.churn = true,
            "--explain" => args.explain = true,
            "--shutdown" => args.shutdown = true,
            "--sessions" => args.opts.sessions = parse("--sessions", &value("--sessions")?)?,
            "--rounds" => args.opts.rounds = parse("--rounds", &value("--rounds")?)?,
            "--queries" => {
                args.opts.queries_per_session = parse("--queries", &value("--queries")?)?
            }
            "--step-ms" => args.opts.step_millis = parse("--step-ms", &value("--step-ms")?)?,
            "--seed" => args.opts.seed = parse("--seed", &value("--seed")?)?,
            "--help" | "-h" => {
                println!(
                    "usage: dr-load [--addr HOST:PORT | --inproc] [--sessions N] [--rounds N] \
                     [--queries N] [--step-ms MS] [--seed N] [--nodes N] [--churn] [--explain] \
                     [--shutdown]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("{name}: cannot parse {raw:?}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("dr-load: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.inproc {
        let churn = args.churn.then(|| {
            ChurnSchedule::alternating(
                args.nodes,
                0.2,
                SimTime::from_millis(1_000),
                SimDuration::from_millis(3_000),
                3,
                args.opts.seed,
            )
        });
        let report = run_inproc(args.nodes, &args.opts, churn.as_ref());
        for line in report.summary_lines() {
            println!("dr-load: {line}");
        }
        return ExitCode::SUCCESS;
    }

    // Dial with bounded exponential backoff: a load generator launched
    // alongside the daemon (as CI does) must ride out the window where the
    // listener is not up yet instead of failing on the first refusal.
    let backoff = Backoff::default();
    let report = run(&args.opts, |_| backoff.retry_blocking(|| TcpTransport::dial(&args.addr)));
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dr-load: {e}");
            return ExitCode::FAILURE;
        }
    };
    for line in report.summary_lines() {
        println!("dr-load: {line}");
    }

    // One last session for the explain probe, the stats snapshot, and the
    // optional shutdown.
    let tail =
        Client::connect_with_backoff(|| TcpTransport::dial(&args.addr), "load-tail", backoff)
            .map_err(|e| e.to_string())
            .and_then(|mut client| {
                if args.explain {
                    for line in explain_probe(&mut client).map_err(|e| e.to_string())? {
                        println!("dr-load: {line}");
                    }
                }
                let lines = client.stats().map_err(|e| e.to_string())?;
                for line in &lines {
                    println!("{line}");
                }
                if args.shutdown {
                    client.shutdown_server().map_err(|e| e.to_string())?;
                    println!("dr-load: server acknowledged shutdown");
                }
                Ok(())
            });
    if let Err(e) = tail {
        eprintln!("dr-load: stats/shutdown failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
