//! Shim-vs-scenario equivalence on the Figure 6 measurement.
//!
//! `dr-bench`'s `run_best_path_query` is now a one-chain scenario; the old
//! imperative choreography (issue + `QueryHandle::run_and_sample`) survives
//! as a `#[deprecated]` shim for one release. This test pins that both
//! paths produce the *same* Figure 6 numbers — convergence latency,
//! per-node overhead, route count, and average cost — on a quick-scale
//! transit-stub network, so the shim can be deleted next release without a
//! silent figure shift.

use dr_bench::runner::run_best_path_query;
use dr_core::harness::RoutingHarness;
use dr_netsim::{SimDuration, SimTime};
use dr_protocols::best_path;
use dr_workloads::TransitStubParams;

#[test]
#[allow(deprecated)] // the whole point: compare the shim against the scenario
fn fig06_shim_and_scenario_paths_agree_exactly() {
    let size = 50;
    let horizon = SimTime::from_secs(90);
    let sample = SimDuration::from_millis(500);
    let topo = TransitStubParams::sized(size, 7).generate();

    // Scenario path (what fig06_convergence runs today).
    let scenario = run_best_path_query(topo.clone(), horizon, sample);

    // Shim path: the pre-scenario choreography, verbatim.
    let mut harness = RoutingHarness::new(topo);
    let handle = harness.issue(best_path()).submit().expect("best-path query must localize");
    let report = handle
        .run_and_sample(&mut harness, sample, horizon)
        .expect("best-path results decode as routes");

    assert_eq!(
        scenario.convergence_s,
        report.converged_at.map(|t| t.as_secs_f64()),
        "convergence latency must not shift"
    );
    assert_eq!(
        scenario.per_node_kb, report.per_node_overhead_kb,
        "per-node overhead must match to the last bit"
    );
    assert_eq!(scenario.routes, report.final_results(), "route counts must match");
    assert_eq!(scenario.avg_cost, report.final_avg_cost(), "average cost must match");
}
