//! Criterion micro-benchmarks of the Datalog engine: parsing, centralized
//! fixpoint evaluation (semi-naïve vs naïve — the ablation for §3.3's
//! choice of evaluation strategy), and the aggregate-selections optimization
//! of §7.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_datalog::eval::EvalConfig;
use dr_datalog::{parse_program, Database, Evaluator};
use dr_protocols::{best_path, distance_vector, link_state};
use dr_types::{NodeId, Tuple, Value};
use dr_workloads::TransitStubParams;

fn link_tuples_from_topology(nodes: usize, seed: u64) -> Vec<Tuple> {
    let topo = TransitStubParams::sized(nodes, seed).generate();
    topo.all_links()
        .map(|(s, d, p)| {
            Tuple::new("link", vec![Value::Node(s), Value::Node(d), Value::from(p.cost.value())])
        })
        .collect()
}

fn ring_links(n: u32) -> Vec<Tuple> {
    let mut out = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        for (s, d) in [(i, j), (j, i)] {
            out.push(Tuple::new(
                "link",
                vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(1.0)],
            ));
        }
    }
    out
}

fn bench_parser(c: &mut Criterion) {
    let src = best_path().to_string();
    c.bench_function("parse_best_path_program", |b| {
        b.iter(|| parse_program(&src).expect("program parses"))
    });
}

fn bench_semi_naive_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint_strategy");
    group.sample_size(10);
    let links = ring_links(23);
    for (label, semi) in [("semi_naive", true), ("naive", false)] {
        group.bench_function(BenchmarkId::new("best_path_ring23", label), |b| {
            b.iter(|| {
                let cfg = EvalConfig { semi_naive: semi, ..EvalConfig::default() };
                let eval = Evaluator::with_config(best_path(), cfg).expect("valid program");
                let mut db = Database::new();
                for l in &links {
                    db.insert(l.clone());
                }
                eval.run(&mut db).expect("fixpoint terminates")
            })
        });
    }
    group.finish();
}

fn bench_aggregate_selections(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_selections");
    group.sample_size(10);
    let links = link_tuples_from_topology(100, 3);
    for (label, on) in [("enabled", true), ("disabled", false)] {
        group.bench_function(BenchmarkId::new("distance_vector_100", label), |b| {
            b.iter(|| {
                let cfg = EvalConfig { aggregate_selections: on, ..EvalConfig::default() };
                let eval =
                    Evaluator::with_config(distance_vector(200.0), cfg).expect("valid program");
                let mut db = Database::new();
                for l in &links {
                    db.insert(l.clone());
                }
                eval.run(&mut db).expect("fixpoint terminates")
            })
        });
    }
    group.finish();
}

fn bench_link_state_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_state");
    group.sample_size(10);
    let links = ring_links(16);
    group.bench_function("flood_and_local_routes_ring16", |b| {
        b.iter(|| {
            let eval = Evaluator::new(link_state()).expect("valid program");
            let mut db = Database::new();
            for l in &links {
                db.insert(l.clone());
            }
            eval.run(&mut db).expect("fixpoint terminates")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_semi_naive_vs_naive,
    bench_aggregate_selections,
    bench_link_state_flooding
);
criterion_main!(benches);
