//! Criterion micro-benchmarks of the Datalog engine: parsing, centralized
//! fixpoint evaluation (semi-naïve vs naïve — the ablation for §3.3's
//! choice of evaluation strategy), the aggregate-selections optimization of
//! §7.1, and the §8 churn-recovery path (hub failure on a dense overlay,
//! exercising the ∞-tombstone pruning and the indexed storage layer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dr_core::harness::RoutingHarness;
use dr_core::processor::ReliabilityConfig;
use dr_datalog::eval::EvalConfig;
use dr_datalog::{parse_program, Database, Evaluator};
use dr_netsim::{FaultPlan, LinkFaults, SimTime};
use dr_protocols::{best_path, distance_vector, link_state};
use dr_types::{NodeId, Tuple, Value};
use dr_workloads::{OverlayKind, OverlayParams, TransitStubParams};

fn link_tuples_from_topology(nodes: usize, seed: u64) -> Vec<Tuple> {
    let topo = TransitStubParams::sized(nodes, seed).generate();
    topo.all_links()
        .map(|(s, d, p)| {
            Tuple::new("link", vec![Value::Node(s), Value::Node(d), Value::from(p.cost.value())])
        })
        .collect()
}

fn ring_links(n: u32) -> Vec<Tuple> {
    let mut out = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        for (s, d) in [(i, j), (j, i)] {
            out.push(Tuple::new(
                "link",
                vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(1.0)],
            ));
        }
    }
    out
}

fn bench_parser(c: &mut Criterion) {
    let src = best_path().to_string();
    c.bench_function("parse_best_path_program", |b| {
        b.iter(|| parse_program(&src).expect("program parses"))
    });
}

fn bench_semi_naive_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("fixpoint_strategy");
    group.sample_size(10);
    let links = ring_links(23);
    for (label, semi) in [("semi_naive", true), ("naive", false)] {
        group.bench_function(BenchmarkId::new("best_path_ring23", label), |b| {
            b.iter(|| {
                let cfg = EvalConfig { semi_naive: semi, ..EvalConfig::default() };
                let eval = Evaluator::with_config(best_path(), cfg).expect("valid program");
                let mut db = Database::new();
                for l in &links {
                    db.insert(l.clone());
                }
                eval.run(&mut db).expect("fixpoint terminates")
            })
        });
    }
    group.finish();
}

fn bench_aggregate_selections(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate_selections");
    group.sample_size(10);
    let links = link_tuples_from_topology(100, 3);
    for (label, on) in [("enabled", true), ("disabled", false)] {
        group.bench_function(BenchmarkId::new("distance_vector_100", label), |b| {
            b.iter(|| {
                let cfg = EvalConfig { aggregate_selections: on, ..EvalConfig::default() };
                let eval =
                    Evaluator::with_config(distance_vector(200.0), cfg).expect("valid program");
                let mut db = Database::new();
                for l in &links {
                    db.insert(l.clone());
                }
                eval.run(&mut db).expect("fixpoint terminates")
            })
        });
    }
    group.finish();
}

fn bench_link_state_flooding(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_state");
    group.sample_size(10);
    let links = ring_links(16);
    group.bench_function("flood_and_local_routes_ring16", |b| {
        b.iter(|| {
            let eval = Evaluator::new(link_state()).expect("valid program");
            let mut db = Database::new();
            for l in &links {
                db.insert(l.clone());
            }
            eval.run(&mut db).expect("fixpoint terminates")
        })
    });
    group.finish();
}

fn bench_churn_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_recovery");
    group.sample_size(3);
    // The PR 2 repro: fail the best-connected node of a 16-node Dense-UUNET
    // overlay after convergence. Before ∞-tombstone pruning this enumerated
    // exponentially many infinite-cost paths (minutes, tens of GB); the
    // bench tracks the whole converge + fail + re-converge cycle.
    let topo = OverlayParams { nodes: 16, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 9) }
        .generate();
    let hub = topo
        .nodes()
        .filter(|n| *n != NodeId::new(0))
        .max_by_key(|&n| topo.degree(n))
        .expect("overlay has nodes");
    group.bench_function("dense_uunet16_hub_fail", |b| {
        b.iter(|| {
            let mut harness = RoutingHarness::new(topo.clone());
            let handle = harness.issue(best_path()).submit().expect("query localizes");
            harness.run_until(SimTime::from_secs(120));
            harness.sim_mut().schedule_node_fail(SimTime::from_secs(120), hub);
            harness.run_until(SimTime::from_secs(240));
            handle.finite_results(&harness).expect("routes decode").len()
        })
    });
    // The same cycle on a lossy wire with the reliable transport: tracks
    // what retransmission, duplicate suppression, and reorder buffering
    // cost on top of the recovery itself.
    group.bench_function("dense_uunet16_hub_fail_lossy", |b| {
        b.iter(|| {
            let mut harness =
                RoutingHarness::with_reliability(topo.clone(), ReliabilityConfig::default());
            harness.set_fault_plan(
                FaultPlan::new(9).uniform(LinkFaults::none().with_drop(0.05).with_duplicate(0.10)),
            );
            let handle = harness.issue(best_path()).submit().expect("query localizes");
            harness.run_until(SimTime::from_secs(120));
            harness.sim_mut().schedule_node_fail(SimTime::from_secs(120), hub);
            harness.run_until(SimTime::from_secs(240));
            handle.finite_results(&harness).expect("routes decode").len()
        })
    });
    group.finish();
}

fn bench_provenance_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("provenance_overhead");
    group.sample_size(5);
    // Full distributed convergence on the 16-node dense overlay with
    // provenance recording off and on. The off row prices the
    // zero-cost-when-off invariant — no `ProvStore` is allocated and
    // evaluation takes the untraced path, so it must stay within noise of
    // the engine before the provenance subsystem existed (gated by the CI
    // baseline comparison). The on row is what a deployment pays for
    // explainable routes.
    let topo = OverlayParams { nodes: 16, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 9) }
        .generate();
    for (label, on) in [("recording_off", false), ("recording_on", true)] {
        group.bench_function(BenchmarkId::new("dense_uunet16_converge", label), |b| {
            b.iter(|| {
                let mut harness = RoutingHarness::new(topo.clone());
                let handle =
                    harness.issue(best_path()).provenance(on).submit().expect("query localizes");
                harness.run_until(SimTime::from_secs(120));
                handle.finite_results(&harness).expect("routes decode").len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parser,
    bench_semi_naive_vs_naive,
    bench_aggregate_selections,
    bench_link_state_flooding,
    bench_churn_recovery,
    bench_provenance_overhead
);
criterion_main!(benches);
