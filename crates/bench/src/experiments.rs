//! One function per figure / table of the paper's evaluation (§9).
//!
//! Every experiment is a declarative scenario — a
//! [`dr_core::scenario::ScenarioBuilder`] chain composing the topology, the
//! event timeline (query streams, churn, link-RTT dynamics), and the typed
//! probes the figure plots — so a new experiment is one builder chain, not
//! a new hand-driven sampling loop. Every function returns printable
//! [`Series`] or rows and is wrapped by a thin binary in `src/bin/`.
//! Scales default to a laptop-friendly "quick" configuration; `DR_FULL=1`
//! switches to the paper's parameters.

use crate::runner::{
    average_link_rtt, full_scale, route_cost_map, run_best_path_query, run_path_vector_baseline,
    Series,
};
use dr_core::scenario::{Probe, QueryDef, ScenarioBuilder};
use dr_netsim::{FaultPlan, LinkFaults, LinkParams, SimDuration, SimTime, Topology};
use dr_protocols::{best_path, best_path_pairs, best_path_pairs_share};
use dr_types::NodeId;
use dr_workloads::queries::QueryMetric;
use dr_workloads::{
    ChurnSchedule, LinkRttSchedule, MixedWorkload, OverlayKind, OverlayParams, PairWorkload,
    TransitStubParams,
};

// ---------------------------------------------------------------------------
// Figure 5 — network diameter vs number of nodes
// ---------------------------------------------------------------------------

/// Figure 5: diameter (latency of the longest shortest path, ms) of
/// transit-stub topologies as the node count grows.
pub fn fig05_diameter() -> Vec<Series> {
    let sizes: Vec<usize> =
        if full_scale() { vec![100, 200, 400, 600, 800, 1000] } else { vec![100, 200, 300, 400] };
    let runs = if full_scale() { 5 } else { 3 };
    let mut mean = Series::new("diameter_ms");
    let mut stddev = Series::new("stddev_ms");
    for &size in &sizes {
        let samples: Vec<f64> = (0..runs)
            .map(|r| {
                TransitStubParams::sized(size, 100 + r as u64).generate().diameter_latency_ms()
            })
            .collect();
        let m = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / samples.len() as f64;
        mean.push(size as f64, m);
        stddev.push(size as f64, var.sqrt());
    }
    vec![mean, stddev]
}

// ---------------------------------------------------------------------------
// Figure 6 — convergence latency vs number of nodes (Query vs PV)
// ---------------------------------------------------------------------------

/// Figure 6: convergence latency of the all-pairs Best-Path query compared
/// against the hand-coded path-vector protocol, on growing transit-stub
/// networks. Also reports the per-node communication overhead of both.
pub fn fig06_convergence() -> Vec<Series> {
    let sizes: Vec<usize> =
        if full_scale() { vec![100, 200, 400, 600, 800, 1000] } else { vec![50, 100, 150] };
    let horizon = SimTime::from_secs(if full_scale() { 120 } else { 90 });
    let sample = SimDuration::from_millis(500);

    let mut query_latency = Series::new("query_convergence_s");
    let mut pv_latency = Series::new("pv_convergence_s");
    let mut query_overhead = Series::new("query_kb_per_node");
    let mut pv_overhead = Series::new("pv_kb_per_node");
    for &size in &sizes {
        let topo = TransitStubParams::sized(size, 7).generate();
        let q = run_best_path_query(topo.clone(), horizon, sample);
        let pv = run_path_vector_baseline(topo, horizon, sample);
        query_latency.push(size as f64, q.convergence_s.unwrap_or(f64::NAN));
        pv_latency.push(size as f64, pv.convergence_s.unwrap_or(f64::NAN));
        query_overhead.push(size as f64, q.per_node_kb);
        pv_overhead.push(size as f64, pv.per_node_kb);
    }
    vec![query_latency, pv_latency, query_overhead, pv_overhead]
}

// ---------------------------------------------------------------------------
// Figures 7 / 8 / 9 — source/destination query streams
// ---------------------------------------------------------------------------

/// Strategy for executing a stream of source/destination route requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStrategy {
    /// One all-pairs Best-Path query serves every request (the "All Pairs"
    /// baseline line).
    AllPairs,
    /// One Best-Path-Pairs query per request, no sharing.
    NoShare,
    /// One Best-Path-Pairs-Share query per request, sharing results through
    /// `bestPathCache`.
    Share,
}

impl PairStrategy {
    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            PairStrategy::AllPairs => "All Pairs",
            PairStrategy::NoShare => "Pair-NoShare",
            PairStrategy::Share => "Pair-Share",
        }
    }
}

/// Parameters of a pair-query stream experiment.
#[derive(Debug, Clone)]
pub struct PairStreamParams {
    /// Network size (transit-stub).
    pub nodes: usize,
    /// Number of route requests to issue.
    pub queries: usize,
    /// Fraction of nodes eligible as destinations (Fig. 8's "X% Dst").
    pub destination_fraction: f64,
    /// Simulated time between consecutive requests.
    pub spacing: SimDuration,
    /// Record the cumulative overhead every this many queries.
    pub checkpoint_every: usize,
    /// RNG seed for the workload and topology.
    pub seed: u64,
}

impl Default for PairStreamParams {
    fn default() -> Self {
        if full_scale() {
            PairStreamParams {
                nodes: 200,
                queries: 300,
                destination_fraction: 1.0,
                spacing: SimDuration::from_secs(15),
                checkpoint_every: 20,
                seed: 11,
            }
        } else {
            PairStreamParams {
                nodes: 60,
                queries: 60,
                destination_fraction: 1.0,
                spacing: SimDuration::from_secs(5),
                checkpoint_every: 10,
                seed: 11,
            }
        }
    }
}

/// Turn a per-checkpoint overhead scenario into the figure's series: the
/// q-th query's cumulative per-node KB, every `checkpoint_every` queries.
///
/// The scenario samples the overhead probe once per request slot, so the
/// (q-1)-th sample is the overhead right after the q-th request's slot —
/// exactly what the old hand-driven loop recorded.
fn checkpoint_series(name: &str, overhead: &[(f64, f64)], checkpoint_every: usize) -> Series {
    let mut series = Series::new(name);
    for (idx, (_, kb)) in overhead.iter().enumerate() {
        let q = idx + 1;
        if q % checkpoint_every == 0 {
            series.push(q as f64, *kb);
        }
    }
    series
}

/// Run a stream of pair queries under `strategy` and return the cumulative
/// per-node overhead (KB) after every checkpoint.
pub fn run_pair_stream(strategy: PairStrategy, params: &PairStreamParams) -> Series {
    let topo = TransitStubParams::sized(params.nodes, params.seed).generate();

    if strategy == PairStrategy::AllPairs {
        // One all-pairs query; its overhead is independent of how many
        // requests it serves, so the series is flat.
        let horizon = SimTime::from_secs(if full_scale() { 120 } else { 90 });
        let outcome = run_best_path_query(topo, horizon, SimDuration::from_secs(1));
        let mut series = Series::new(strategy.label());
        let mut q = params.checkpoint_every;
        while q <= params.queries {
            series.push(q as f64, outcome.per_node_kb);
            q += params.checkpoint_every;
        }
        return series;
    }

    let mut workload = PairWorkload::with_destination_fraction(
        params.nodes,
        params.destination_fraction,
        params.seed,
    );
    let mut defs = Vec::with_capacity(params.queries);
    for q in 1..=params.queries {
        let (src, dst) = workload.next_pair();
        let def = match strategy {
            PairStrategy::NoShare => QueryDef::new(best_path_pairs(src, dst))
                .named(format!("pair-{q}"))
                .replicated(["magicDsts"]),
            PairStrategy::Share => QueryDef::new(best_path_pairs_share(src, dst, "bestPathCache"))
                .named(format!("pair-share-{q}"))
                .replicated(["magicDsts"])
                .sharing(true),
            PairStrategy::AllPairs => unreachable!("handled above"),
        };
        defs.push(def.from(src).at(SimTime::ZERO + params.spacing.times(q as u64 - 1)));
    }
    let report = ScenarioBuilder::over(topo)
        .queries(defs)
        .probes([Probe::OverheadSeries])
        .sample_every(params.spacing)
        .until(SimTime::ZERO + params.spacing.times(params.queries as u64))
        .run()
        .expect("pair-stream scenario must localize");
    checkpoint_series(strategy.label(), &report.overhead_series, params.checkpoint_every)
}

/// Figure 7: per-node communication overhead vs number of requests for the
/// three strategies.
pub fn fig07_overhead() -> Vec<Series> {
    let params = PairStreamParams::default();
    vec![
        run_pair_stream(PairStrategy::AllPairs, &params),
        run_pair_stream(PairStrategy::NoShare, &params),
        run_pair_stream(PairStrategy::Share, &params),
    ]
}

/// Figure 8: the sharing strategy with progressively restricted destination
/// pools (all destinations, 20%, 1% in the paper; 20% and 5% at quick
/// scale), plus the All-Pairs reference.
pub fn fig08_overhead_restricted() -> Vec<Series> {
    let base = PairStreamParams {
        queries: if full_scale() { 2000 } else { 120 },
        checkpoint_every: if full_scale() { 100 } else { 20 },
        ..PairStreamParams::default()
    };
    let fractions: Vec<(f64, &str)> = if full_scale() {
        vec![(1.0, "Pair-Share"), (0.2, "Pair-Share (20% Dst)"), (0.01, "Pair-Share (1% Dst)")]
    } else {
        vec![(1.0, "Pair-Share"), (0.2, "Pair-Share (20% Dst)"), (0.05, "Pair-Share (5% Dst)")]
    };
    let mut out = vec![run_pair_stream(PairStrategy::AllPairs, &base)];
    for (fraction, label) in fractions {
        let params = PairStreamParams { destination_fraction: fraction, ..base.clone() };
        let mut series = run_pair_stream(PairStrategy::Share, &params);
        series.name = label.to_string();
        out.push(series);
    }
    out
}

/// Figure 9: the mixed-metric workload (65% latency + three other metrics),
/// with and without the mid-stream switch to a single metric (Mix2), against
/// the no-sharing and full-sharing single-metric references.
pub fn fig09_mixed_workload() -> Vec<Series> {
    let params = PairStreamParams::default();
    let mut out = vec![
        run_pair_stream(PairStrategy::NoShare, &params),
        run_pair_stream(PairStrategy::Share, &params),
    ];
    for (label, switch) in [
        ("Pair-Share-Mix", None),
        ("Pair-Share-Mix2", Some(if full_scale() { 150 } else { params.queries / 2 })),
    ] {
        out.push(run_mixed_stream(label, switch, &params));
    }
    out
}

fn run_mixed_stream(label: &str, switch: Option<usize>, params: &PairStreamParams) -> Series {
    let topo = TransitStubParams::sized(params.nodes, params.seed).generate();
    let mut workload = MixedWorkload::new(params.nodes, switch, params.seed);
    let mut defs = Vec::with_capacity(params.queries);
    for q in 1..=params.queries {
        let (src, dst, metric) = workload.next_query();
        let cache = metric.cache_relation();
        defs.push(
            QueryDef::new(best_path_pairs_share(src, dst, cache))
                .named(format!("{label}-{q}-{metric:?}"))
                .replicated(["magicDsts"])
                .sharing(true)
                .cache_relation(cache)
                .from(src)
                .at(SimTime::ZERO + params.spacing.times(q as u64 - 1)),
        );
    }
    let report = ScenarioBuilder::over(topo)
        .queries(defs)
        .probes([Probe::OverheadSeries])
        .sample_every(params.spacing)
        .until(SimTime::ZERO + params.spacing.times(params.queries as u64))
        .run()
        .expect("mixed-stream scenario must localize");
    checkpoint_series(label, &report.overhead_series, params.checkpoint_every)
}

/// The four per-metric cache relations used by the mixed workload (exposed
/// for the ablation benchmarks).
pub fn mixed_metrics() -> Vec<QueryMetric> {
    vec![QueryMetric::Latency, QueryMetric::MetricA, QueryMetric::MetricB, QueryMetric::MetricC]
}

// ---------------------------------------------------------------------------
// Tables 1 & 2 — overlay RTTs
// ---------------------------------------------------------------------------

/// One row of Tables 1/2.
#[derive(Debug, Clone)]
pub struct OverlayRttRow {
    /// Topology name.
    pub topology: String,
    /// Average link RTT (ms).
    pub avg_link_rtt: f64,
    /// Average shortest-path RTT (ms) computed by the all-pairs query.
    pub avg_path_rtt: f64,
    /// Number of computed paths.
    pub paths: usize,
}

/// Tables 1 and 2: average link RTT and average best-path RTT for the three
/// overlay topologies, under the baseline and the "heavier load" measurement
/// period.
pub fn tab01_02_overlay_rtt() -> Vec<OverlayRttRow> {
    let nodes = if full_scale() { 72 } else { 36 };
    let horizon = SimTime::from_secs(if full_scale() { 240 } else { 180 });
    let mut rows = Vec::new();
    let configs = [
        (OverlayKind::SparseRandom, 1.0, "Sparse-Random"),
        (OverlayKind::DenseRandom, 1.0, "Dense-Random"),
        (OverlayKind::DenseRandom, 1.2, "Dense-Random (loaded)"),
        (OverlayKind::DenseUunet, 1.2, "Dense-UUNET (loaded)"),
    ];
    for (kind, load, label) in configs {
        let params =
            OverlayParams { nodes, load_factor: load, ..OverlayParams::planetlab(kind, 21) };
        let topo = params.generate();
        let link_rtt = average_link_rtt(&topo);
        let outcome = run_best_path_query(topo, horizon, SimDuration::from_secs(2));
        rows.push(OverlayRttRow {
            topology: label.to_string(),
            avg_link_rtt: link_rtt,
            avg_path_rtt: outcome.avg_cost,
            paths: outcome.routes,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 10 & 11 — query execution on the emulated PlanetLab overlays
// ---------------------------------------------------------------------------

/// Figures 10 and 11: AvgPathRTT over time during query execution, and
/// per-node bandwidth over time, for the Sparse-Random and Dense-Random
/// overlays. Returns `(avg_path_rtt_series, bandwidth_series)`.
pub fn fig10_11_planetlab() -> (Vec<Series>, Vec<Series>) {
    let nodes = if full_scale() { 72 } else { 36 };
    let horizon = SimTime::from_secs(if full_scale() { 180 } else { 120 });
    let mut rtt_series = Vec::new();
    let mut bw_series = Vec::new();
    for kind in [OverlayKind::SparseRandom, OverlayKind::DenseRandom] {
        let params = OverlayParams { nodes, ..OverlayParams::planetlab(kind, 33) };
        let report = ScenarioBuilder::over(params.generate())
            .query(QueryDef::new(best_path()))
            .sample_every(SimDuration::from_secs(2))
            .until(horizon)
            .probe(Probe::Bandwidth)
            .run()
            .expect("planetlab scenario must localize and decode");
        let mut rtt = Series::new(kind.name());
        for s in &report.queries[0].samples {
            rtt.push(s.time.as_secs_f64(), s.avg_cost);
        }
        rtt_series.push(rtt);
        let mut bw = Series::new(format!("{} (KBps/node)", kind.name()));
        for (t, bytes_per_s) in &report.bandwidth {
            bw.push(*t, bytes_per_s / 1024.0);
        }
        bw_series.push(bw);
    }
    (rtt_series, bw_series)
}

// ---------------------------------------------------------------------------
// Figures 12/13 and Table 3 — path adaptation under RTT fluctuation
// ---------------------------------------------------------------------------

/// Result of one adaptation run (Fig. 12 or 13 plus its Table 3 row).
#[derive(Debug, Clone)]
pub struct AdaptationOutcome {
    /// AvgPathRTT over time.
    pub avg_path_rtt: Series,
    /// AvgLinkRTT (as reported to the query processors) over time.
    pub avg_link_rtt: Series,
    /// Fraction of (source, destination) pairs whose best path never changed
    /// after the initial convergence.
    pub stable_fraction: f64,
    /// Average number of best-path changes per pair.
    pub avg_changes: f64,
    /// Steady-state per-node bandwidth (bytes per second) during the update
    /// phase.
    pub steady_state_bps: f64,
    /// Overlay name.
    pub topology: String,
    /// Whether Jacobson/Karels smoothing was applied.
    pub smoothed: bool,
}

/// Figures 12/13 + Table 3: run the continuous all-pairs shortest-RTT query
/// on a random overlay while a [`LinkRttSchedule`] periodically refreshes
/// link RTT measurements (raw or smoothed), and measure how the computed
/// paths track the fluctuations and how stable they are.
pub fn adaptation_experiment(kind: OverlayKind, smoothed: bool, seed: u64) -> AdaptationOutcome {
    let nodes = if full_scale() { 72 } else { 36 };
    let rounds = if full_scale() { 10 } else { 6 };
    let round_interval = SimDuration::from_secs(if full_scale() { 300 } else { 40 });
    let warmup = SimTime::from_secs(if full_scale() { 180 } else { 120 });

    let params = OverlayParams { nodes, ..OverlayParams::planetlab(kind, seed) };
    let measurements =
        LinkRttSchedule::new(warmup, round_interval, rounds, smoothed, seed ^ 0x5eed);
    let report = ScenarioBuilder::over(params.generate())
        .query(QueryDef::new(best_path()))
        .source(&measurements)
        .sample_from(warmup)
        .sample_every(round_interval)
        .until(warmup + round_interval.times(rounds as u64))
        .probes([Probe::PathRtt, Probe::LinkRtt, Probe::PathChanges])
        .run()
        .expect("adaptation scenario must localize and decode");

    let changes = report.path_changes.as_ref().expect("PathChanges probe enabled");
    AdaptationOutcome {
        avg_path_rtt: Series::from_points(
            format!("AvgPathRTT ({})", kind.name()),
            &report.path_rtt,
        ),
        avg_link_rtt: Series::from_points("AvgLinkRTT", &report.link_rtt),
        stable_fraction: changes.stable_fraction(),
        avg_changes: changes.avg_changes(),
        steady_state_bps: report.window.per_node_bps,
        topology: kind.name().to_string(),
        smoothed,
    }
}

/// Table 3: the four stability rows (Sparse/Dense random, raw and smoothed).
pub fn tab03_stability() -> Vec<AdaptationOutcome> {
    let mut rows = Vec::new();
    for kind in [OverlayKind::SparseRandom, OverlayKind::DenseRandom] {
        for smoothed in [false, true] {
            rows.push(adaptation_experiment(kind, smoothed, 51));
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Figures 14/15 and Table 4 — churn
// ---------------------------------------------------------------------------

/// Result of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// AvgPathRTT over time (the Fig. 14 curve for this failure fraction).
    pub avg_path_rtt: Series,
    /// Average path recovery time in seconds (Table 4). Per §9.1, recovery
    /// times exclude the failure-detection delay.
    pub avg_recovery_s: f64,
    /// Median recovery time in seconds.
    pub median_recovery_s: f64,
    /// Fraction of affected paths that needed ≥ 10 s to recover.
    pub slow_recovery_fraction: f64,
    /// Per-node bandwidth (bytes/s) during the churn phase.
    pub churn_bps: f64,
    /// The failure fraction used.
    pub fraction: f64,
    /// Overlay name.
    pub topology: String,
}

/// Figures 14/15 + Table 4: run the continuous query on an overlay and
/// inject alternating fail/join churn affecting `fraction` of the nodes.
pub fn churn_experiment(kind: OverlayKind, fraction: f64, seed: u64) -> ChurnOutcome {
    let nodes = if full_scale() { 72 } else { 36 };
    let cycles = if full_scale() { 4 } else { 2 };
    let interval = SimDuration::from_secs(if full_scale() { 150 } else { 60 });
    let warmup = SimTime::from_secs(if full_scale() { 180 } else { 120 });

    let params = OverlayParams { nodes, ..OverlayParams::planetlab(kind, seed) };
    let schedule =
        ChurnSchedule::alternating(nodes, fraction, warmup, interval, cycles, seed ^ 0xc0de);
    let report = ScenarioBuilder::over(params.generate())
        .query(QueryDef::new(best_path()))
        .source(&schedule)
        .sample_from(warmup)
        .sample_every(SimDuration::from_secs(1))
        .until(schedule.end_time() + interval)
        .probes([Probe::PathRtt, Probe::Recovery])
        .run()
        .expect("churn scenario must localize and decode");

    let mut recoveries = report.recovery_times();
    recoveries.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let avg_recovery = if recoveries.is_empty() {
        0.0
    } else {
        recoveries.iter().sum::<f64>() / recoveries.len() as f64
    };
    let median = if recoveries.is_empty() { 0.0 } else { recoveries[recoveries.len() / 2] };
    let slow = if recoveries.is_empty() {
        0.0
    } else {
        recoveries.iter().filter(|&&r| r >= 10.0).count() as f64 / recoveries.len() as f64
    };
    ChurnOutcome {
        avg_path_rtt: Series::from_points(
            format!("{} ({:.0}% nodes)", kind.name(), fraction * 100.0),
            &report.path_rtt,
        ),
        avg_recovery_s: avg_recovery,
        median_recovery_s: median,
        slow_recovery_fraction: slow,
        churn_bps: report.window.per_node_bps,
        fraction,
        topology: kind.name().to_string(),
    }
}

/// Figure 14 (and the close-up of Figure 15): AvgPathRTT under churn for
/// three failure fractions on the Dense-UUNET overlay.
pub fn fig14_15_churn() -> Vec<ChurnOutcome> {
    let fractions: Vec<f64> = if full_scale() { vec![0.05, 0.1, 0.2] } else { vec![0.1, 0.2] };
    fractions.into_iter().map(|f| churn_experiment(OverlayKind::DenseUunet, f, 77)).collect()
}

/// Table 4: recovery statistics for the same runs (plus the Dense-Random
/// comparison the paper describes in prose).
pub fn tab04_recovery() -> Vec<ChurnOutcome> {
    let mut rows = fig14_15_churn();
    rows.push(churn_experiment(OverlayKind::DenseRandom, 0.1, 78));
    rows
}

// ---------------------------------------------------------------------------
// Partition / heal convergence (ROADMAP: "network partitions and heals")
// ---------------------------------------------------------------------------

/// Result of one partition/heal run.
#[derive(Debug, Clone)]
pub struct PartitionHealOutcome {
    /// AvgPathRTT over time through the partition (t=120 s) and the heal
    /// (t=240 s).
    pub avg_path_rtt: Series,
    /// Number of nodes severed onto the minority side of the cut.
    pub side_nodes: usize,
    /// Whether the mid-partition routes equal the union of the two
    /// side-subgraph oracles exactly (each side converges independently).
    pub mid_partition_exact: bool,
    /// Finite routes found mid-partition (intra-side pairs only).
    pub mid_partition_routes: usize,
    /// Finite routes crossing the cut mid-partition — must be zero once the
    /// invalidation wave has run.
    pub cross_cut_routes_mid: usize,
    /// Whether the post-heal routes equal a from-scratch recomputation on
    /// the whole topology exactly.
    pub post_heal_exact: bool,
    /// Finite routes after the heal.
    pub post_heal_routes: usize,
}

/// Partition a transit-stub overlay into two halves mid-query, pin that each
/// half re-converges to exactly its side-subgraph oracle (and that no
/// cross-cut route survives), then heal the cut and pin that the final
/// routes equal a from-scratch recomputation on the whole topology.
pub fn partition_heal_experiment(nodes: usize, seed: u64) -> PartitionHealOutcome {
    // `sized` only scales in whole ~100-node domains; below that, shrink the
    // per-domain structure instead (transit nodes × (1 + 3 stubs × 3 nodes)).
    let params = if nodes >= 100 {
        TransitStubParams::sized(nodes, seed)
    } else {
        TransitStubParams {
            domains: 1,
            transit_nodes_per_domain: (nodes / 10).max(2),
            stubs_per_transit_node: 3,
            nodes_per_stub: 3,
            seed,
            ..TransitStubParams::default()
        }
    };
    let topo = params.generate();
    let n = topo.num_nodes();
    let side: Vec<NodeId> = (n as u32 / 2..n as u32).map(NodeId::new).collect();
    let in_side = |node: NodeId| side.contains(&node);
    let warmup = SimTime::from_secs(120);
    let split = SimTime::from_secs(120);
    let rejoin = SimTime::from_secs(240);
    let end = SimTime::from_secs(360);

    // Run 1: partition only, stopped mid-partition.
    let mid = ScenarioBuilder::over(topo.clone())
        .query(QueryDef::new(best_path()))
        .partition(split, side.clone())
        .probes([])
        .sample_every(SimDuration::from_secs(10))
        .until(rejoin)
        .execute()
        .expect("partition scenario must localize and decode");
    let mid_map = route_cost_map(&mid.harness, &mid.handles[0], n);

    // Side-subgraph oracle: Dijkstra over the topology with every cut link
    // removed. A severed side may itself fall apart into islands (stub
    // nodes cut off from their transit hub); a graph oracle handles that
    // naturally where an engine re-run would not — the install flood of a
    // fresh query cannot reach the other islands, but the partitioned run
    // installed the query everywhere *before* the cut.
    let mut cut = Topology::new(n);
    for (a, b, p) in topo.all_links() {
        if in_side(a) == in_side(b) {
            cut.add_link(a, b, LinkParams { ..*p });
        }
    }
    let mut oracle_map = std::collections::BTreeMap::new();
    for src in cut.nodes() {
        for (dst, cost) in cut.cost_distances(src) {
            if dst != src {
                oracle_map.insert((src, dst), (cost * 1000.0).round() as u64);
            }
        }
    }
    let cross_cut_routes_mid = mid_map.keys().filter(|(a, b)| in_side(*a) != in_side(*b)).count();
    let mid_partition_exact = mid_map == oracle_map;

    // Run 2: partition then heal, sampled for the figure's RTT curve.
    let healed = ScenarioBuilder::over(topo.clone())
        .query(QueryDef::new(best_path()))
        .partition(split, side.clone())
        .heal(rejoin)
        .probes([Probe::PathRtt])
        .sample_every(SimDuration::from_secs(5))
        .until(end)
        .execute()
        .expect("partition/heal scenario must localize and decode");
    let healed_map = route_cost_map(&healed.harness, &healed.handles[0], n);

    let scratch = ScenarioBuilder::over(topo)
        .query(QueryDef::new(best_path()))
        .probes([])
        .sample_every(SimDuration::from_secs(60))
        .until(warmup)
        .execute()
        .expect("full-topology oracle must localize and decode");
    let scratch_map = route_cost_map(&scratch.harness, &scratch.handles[0], n);

    PartitionHealOutcome {
        avg_path_rtt: Series::from_points("AvgPathRTT", &healed.report.path_rtt),
        side_nodes: side.len(),
        mid_partition_exact,
        mid_partition_routes: mid_map.len(),
        cross_cut_routes_mid,
        post_heal_exact: healed_map == scratch_map,
        post_heal_routes: healed_map.len(),
    }
}

/// The partition/heal figure: quick scale splits a ~40-node transit-stub
/// graph, `DR_FULL=1` a ~100-node one.
pub fn fig_partition_heal() -> PartitionHealOutcome {
    partition_heal_experiment(if full_scale() { 100 } else { 40 }, 13)
}

// ---------------------------------------------------------------------------
// Chaos smoke — churn under a lossy wire vs the lossless oracle
// ---------------------------------------------------------------------------

/// Result of the chaos smoke run (the CI gate for the loss-tolerant
/// transport).
#[derive(Debug, Clone)]
pub struct ChaosSmokeOutcome {
    /// Finite routes at the end of the faulty run.
    pub routes: usize,
    /// Whether the faulty run's final routes equal the lossless run's with
    /// the identical churn timeline.
    pub matches_oracle: bool,
    /// Messages the fault plan destroyed (must be > 0 or the run proved
    /// nothing).
    pub dropped_fault: u64,
    /// Retransmissions the reliable transport performed.
    pub retransmits: u64,
    /// Duplicate batches suppressed at receivers.
    pub dups_dropped: u64,
}

/// The fig14/15 quick-scale churn workload on a 16-node Dense-UUNET overlay
/// under 5% loss + 10% duplication, compared against a lossless run with
/// the identical churn schedule. The alternating schedule ends with every
/// node rejoined, so both runs must converge to the same routes — the
/// hostile wire has to be invisible.
pub fn chaos_churn_smoke() -> ChaosSmokeOutcome {
    let nodes = 16;
    let seed = 77;
    let warmup = SimTime::from_secs(120);
    let interval = SimDuration::from_secs(60);
    let params = OverlayParams { nodes, ..OverlayParams::planetlab(OverlayKind::DenseUunet, seed) };
    let topo = params.generate();
    let schedule = ChurnSchedule::alternating(nodes, 0.2, warmup, interval, 2, seed ^ 0xc0de);
    let end = schedule.end_time() + interval;

    let faults =
        FaultPlan::new(seed).uniform(LinkFaults::none().with_drop(0.05).with_duplicate(0.10));
    let faulty = ScenarioBuilder::over(topo.clone())
        .query(QueryDef::new(best_path()))
        .source(&schedule)
        .faults(faults)
        .probes([])
        .sample_every(SimDuration::from_secs(10))
        .until(end)
        .execute()
        .expect("chaotic churn scenario must localize and decode");
    let faulty_map = route_cost_map(&faulty.harness, &faulty.handles[0], nodes);

    let lossless = ScenarioBuilder::over(topo)
        .query(QueryDef::new(best_path()))
        .source(&schedule)
        .probes([])
        .sample_every(SimDuration::from_secs(10))
        .until(end)
        .execute()
        .expect("lossless churn scenario must localize and decode");
    let lossless_map = route_cost_map(&lossless.harness, &lossless.handles[0], nodes);

    let stats = faulty.harness.processor_stats();
    ChaosSmokeOutcome {
        routes: faulty_map.len(),
        matches_oracle: faulty_map == lossless_map,
        dropped_fault: faulty.harness.sim().metrics().dropped_fault(),
        retransmits: stats.retransmits,
        dups_dropped: stats.dups_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_strategy_labels() {
        assert_eq!(PairStrategy::AllPairs.label(), "All Pairs");
        assert_eq!(PairStrategy::NoShare.label(), "Pair-NoShare");
        assert_eq!(PairStrategy::Share.label(), "Pair-Share");
    }

    #[test]
    fn fig05_series_are_monotone_in_size() {
        let series = fig05_diameter();
        assert_eq!(series.len(), 2);
        let diameters = &series[0];
        assert!(diameters.points.len() >= 3);
        // Diameter never shrinks dramatically as the network grows.
        assert!(diameters.points.last().unwrap().1 >= diameters.points.first().unwrap().1);
        for (_, d) in &diameters.points {
            assert!(*d > 0.0);
        }
    }

    #[test]
    fn mixed_metrics_enumerates_four() {
        assert_eq!(mixed_metrics().len(), 4);
    }

    #[test]
    fn default_pair_stream_params_scale_with_env() {
        let p = PairStreamParams::default();
        assert!(p.nodes >= 60);
        assert!(p.queries >= 60);
        assert!(p.checkpoint_every > 0);
    }

    #[test]
    fn partition_heal_converges_per_side_and_recovers() {
        let o = partition_heal_experiment(20, 13);
        assert!(o.side_nodes > 0);
        assert_eq!(o.cross_cut_routes_mid, 0, "cross-cut routes must die mid-partition");
        assert!(o.mid_partition_exact, "each side must match its side-subgraph oracle");
        assert!(o.post_heal_exact, "post-heal routes must match the from-scratch oracle");
        assert!(o.post_heal_routes > o.mid_partition_routes);
    }

    #[test]
    fn checkpoint_series_maps_samples_to_query_counts() {
        let overhead: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64 * 5.0, i as f64)).collect();
        let series = checkpoint_series("s", &overhead, 3);
        assert_eq!(series.points, vec![(3.0, 3.0), (6.0, 6.0)]);
    }
}
