//! Table 4: recovery-time breakdown and per-node bandwidth under churn.

use dr_bench::experiments::tab04_recovery;

fn main() {
    println!("# Table 4: path recovery under churn");
    println!("topology,fail_fraction,avg_recovery_s,median_recovery_s,pct_over_10s,churn_Bps");
    for row in tab04_recovery() {
        println!(
            "{},{:.0}%,{:.1},{:.1},{:.0},{:.0}",
            row.topology,
            row.fraction * 100.0,
            row.avg_recovery_s,
            row.median_recovery_s,
            row.slow_recovery_fraction * 100.0,
            row.churn_bps
        );
    }
}
