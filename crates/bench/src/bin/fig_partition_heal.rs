//! Partition/heal convergence: split a transit-stub overlay into two halves
//! mid-query, verify each half re-converges to exactly its side-subgraph
//! oracle (no cross-cut route survives), then heal the cut and verify the
//! final routes equal a from-scratch recomputation on the whole topology.
//! Exits nonzero if either oracle comparison fails.

use dr_bench::experiments::fig_partition_heal;
use dr_bench::Series;

fn main() {
    println!("# Partition/heal: AvgPathRTT (ms); partition at t=120s, heal at t=240s");
    let o = fig_partition_heal();
    Series::print_table("time_s", std::slice::from_ref(&o.avg_path_rtt));
    println!(
        "# side_nodes={} mid_partition_routes={} cross_cut_routes_mid={} post_heal_routes={}",
        o.side_nodes, o.mid_partition_routes, o.cross_cut_routes_mid, o.post_heal_routes
    );
    println!(
        "# mid-partition per-side convergence vs side-subgraph oracles: {}",
        if o.mid_partition_exact { "PASS" } else { "FAIL" }
    );
    println!(
        "# post-heal routes vs from-scratch full-topology oracle: {}",
        if o.post_heal_exact { "PASS" } else { "FAIL" }
    );
    if !(o.mid_partition_exact && o.post_heal_exact && o.cross_cut_routes_mid == 0) {
        std::process::exit(1);
    }
}
