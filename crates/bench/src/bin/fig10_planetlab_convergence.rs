//! Figure 10: AvgPathRTT over time while the all-pairs shortest-RTT query
//! executes on the Sparse-Random and Dense-Random overlays.

use dr_bench::experiments::fig10_11_planetlab;
use dr_bench::Series;

fn main() {
    println!("# Figure 10: AvgPathRTT (ms) during query execution");
    let (rtt, _) = fig10_11_planetlab();
    Series::print_table("time_s", &rtt);
}
