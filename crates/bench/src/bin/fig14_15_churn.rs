//! Figures 14 and 15: AvgPathRTT under churn (alternating fail/join events)
//! for several failure fractions on the Dense-UUNET overlay.

use dr_bench::experiments::fig14_15_churn;
use dr_bench::Series;

fn main() {
    println!("# Figures 14-15: AvgPathRTT (ms) under churn");
    let outcomes = fig14_15_churn();
    let series: Vec<_> = outcomes.iter().map(|o| o.avg_path_rtt.clone()).collect();
    Series::print_table("time_s", &series);
}
