//! Figure 5: network diameter vs number of nodes (transit-stub topologies).

use dr_bench::experiments::fig05_diameter;
use dr_bench::Series;

fn main() {
    println!("# Figure 5: network diameter vs number of nodes");
    let series = fig05_diameter();
    Series::print_table("nodes", &series);
}
