//! Chaos smoke (the CI gate for the loss-tolerant transport): run the
//! quick-scale fig14/15 churn workload on a 16-node Dense-UUNET overlay
//! under 5% loss + 10% duplication and require the final routes to equal a
//! lossless run with the identical churn schedule. Exits nonzero when the
//! routes diverge or the fault plan turned out to be inert.

use dr_bench::experiments::chaos_churn_smoke;

fn main() {
    println!("# Chaos smoke: 16-node Dense-UUNET churn, 5% loss + 10% duplication");
    let o = chaos_churn_smoke();
    println!(
        "routes={} dropped_fault={} retransmits={} dups_dropped={}",
        o.routes, o.dropped_fault, o.retransmits, o.dups_dropped
    );
    println!(
        "faulty run matches lossless churn oracle: {}",
        if o.matches_oracle { "PASS" } else { "FAIL" }
    );
    if !o.matches_oracle || o.dropped_fault == 0 {
        std::process::exit(1);
    }
}
