//! Figure 6: convergence latency vs number of nodes — declarative Best-Path
//! query against the hand-coded path-vector baseline.

use dr_bench::experiments::fig06_convergence;
use dr_bench::Series;

fn main() {
    println!("# Figure 6: convergence latency vs number of nodes (Query vs PV)");
    let series = fig06_convergence();
    Series::print_table("nodes", &series);
}
