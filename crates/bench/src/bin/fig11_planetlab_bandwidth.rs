//! Figure 11: per-node bandwidth over time during query execution on the
//! emulated PlanetLab overlays.

use dr_bench::experiments::fig10_11_planetlab;
use dr_bench::Series;

fn main() {
    println!("# Figure 11: per-node bandwidth (KBps) during query execution");
    let (_, bw) = fig10_11_planetlab();
    Series::print_table("time_s", &bw);
}
