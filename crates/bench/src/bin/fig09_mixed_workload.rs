//! Figure 9: per-node overhead under the mixed-metric query workload.

use dr_bench::experiments::fig09_mixed_workload;
use dr_bench::Series;

fn main() {
    println!("# Figure 9: per-node overhead (KB), mixed query workload");
    let series = fig09_mixed_workload();
    Series::print_table("queries", &series);
}
