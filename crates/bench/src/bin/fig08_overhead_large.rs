//! Figure 8: per-node overhead for the sharing strategy with restricted
//! destination pools (cache-hit saturation).

use dr_bench::experiments::fig08_overhead_restricted;
use dr_bench::Series;

fn main() {
    println!("# Figure 8: per-node overhead (KB) with restricted destination pools");
    let series = fig08_overhead_restricted();
    Series::print_table("queries", &series);
}
