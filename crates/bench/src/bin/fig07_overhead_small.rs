//! Figure 7: per-node communication overhead vs number of
//! source/destination queries (All-Pairs vs Pair-NoShare vs Pair-Share).

use dr_bench::experiments::fig07_overhead;
use dr_bench::Series;

fn main() {
    println!("# Figure 7: per-node overhead (KB) vs number of source/destination queries");
    let series = fig07_overhead();
    Series::print_table("queries", &series);
}
