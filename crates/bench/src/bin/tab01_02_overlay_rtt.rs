//! Tables 1 and 2: average link RTT and average best-path RTT for the
//! emulated PlanetLab overlays.

use dr_bench::experiments::tab01_02_overlay_rtt;

fn main() {
    println!("# Tables 1-2: AvgLinkRTT / AvgPathRTT per overlay topology");
    println!("topology,avg_link_rtt_ms,avg_path_rtt_ms,paths");
    for row in tab01_02_overlay_rtt() {
        println!("{},{:.1},{:.1},{}", row.topology, row.avg_link_rtt, row.avg_path_rtt, row.paths);
    }
}
