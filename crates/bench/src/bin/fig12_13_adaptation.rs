//! Figures 12 and 13: the computed AvgPathRTT tracking AvgLinkRTT under
//! periodic RTT refreshes, without (Fig. 12) and with (Fig. 13)
//! Jacobson/Karels smoothing.

use dr_bench::experiments::adaptation_experiment;
use dr_bench::Series;
use dr_workloads::OverlayKind;

fn main() {
    for (figure, smoothed) in
        [("Figure 12 (raw RTT updates)", false), ("Figure 13 (smoothed)", true)]
    {
        println!("# {figure}");
        let outcome = adaptation_experiment(OverlayKind::DenseRandom, smoothed, 51);
        Series::print_table(
            "time_s",
            &[outcome.avg_path_rtt.clone(), outcome.avg_link_rtt.clone()],
        );
        println!();
    }
}
