//! Table 3: path stability with and without RTT smoothing.

use dr_bench::experiments::tab03_stability;

fn main() {
    println!("# Table 3: computed path stability with and without RTT smoothing");
    println!("topology,smoothed,stable_pct,avg_changes,steady_state_Bps");
    for row in tab03_stability() {
        println!(
            "{},{},{:.0},{:.1},{:.0}",
            row.topology,
            if row.smoothed { "smooth" } else { "raw" },
            row.stable_fraction * 100.0,
            row.avg_changes,
            row.steady_state_bps
        );
    }
}
