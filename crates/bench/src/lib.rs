//! # dr-bench
//!
//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (§9). Each binary in `src/bin/` reproduces one figure
//! or table and prints its data series as a small CSV-like table;
//! `EXPERIMENTS.md` in the repository root records the paper's values next
//! to ours.
//!
//! Experiments run at a reduced "quick" scale by default so the whole suite
//! finishes in minutes on a laptop; set the environment variable
//! `DR_FULL=1` to run at the paper's scale (up to 1000-node networks and
//! tens of thousands of queries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;

pub use runner::{full_scale, Series};
