//! Shared experiment plumbing: running the all-pairs Best-Path query (as a
//! one-line scenario) or the hand-coded path-vector baseline to
//! convergence, and formatting result series.

use dr_baselines::{PathVectorConfig, PathVectorNode};
use dr_core::scenario::{QueryDef, ScenarioBuilder, ScenarioReport};
use dr_netsim::{SimConfig, SimDuration, SimTime, Simulator, Topology};
use dr_protocols::best_path;

/// True when the `DR_FULL` environment variable requests paper-scale runs.
pub fn full_scale() -> bool {
    std::env::var("DR_FULL").map(|v| v == "1" || v.eq_ignore_ascii_case("true")).unwrap_or(false)
}

/// A named series of (x, y) points, printed as CSV.
#[derive(Debug, Clone)]
pub struct Series {
    /// Name of the series (legend label in the paper's figure).
    pub name: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series { name: name.into(), points: Vec::new() }
    }

    /// Create a series from `(x, y)` points.
    pub fn from_points(name: impl Into<String>, points: &[(f64, f64)]) -> Series {
        Series { name: name.into(), points: points.to_vec() }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Print one or more series as CSV to stdout, merging rows on x.
    ///
    /// Rows are produced by a k-way merge over every series' (ascending) x
    /// values: each row takes the smallest pending x and fills the cell of
    /// every series that has a point at exactly that x, leaving the others
    /// empty. Series with different axes therefore interleave correctly
    /// instead of silently borrowing the first series' x column (which
    /// used to skew figure CSVs whenever axes diverged).
    ///
    /// Panics on a non-finite x value — that is a generator bug, and a NaN
    /// axis cell would silently never merge.
    pub fn print_table(x_label: &str, series: &[Series]) {
        print!("{x_label}");
        for s in series {
            print!(",{}", s.name);
        }
        println!();
        for (x, cells) in Series::merge_rows(series) {
            print!("{x:.3}");
            for cell in cells {
                match cell {
                    Some(y) => print!(",{y:.3}"),
                    None => print!(","),
                }
            }
            println!();
        }
    }

    /// The k-way merge behind [`Series::print_table`]: rows of
    /// `(x, one cell per series)`, where a cell is `None` when that series
    /// has no point at this row's x.
    pub fn merge_rows(series: &[Series]) -> Vec<(f64, Vec<Option<f64>>)> {
        let mut cursor = vec![0usize; series.len()];
        let mut rows = Vec::new();
        loop {
            let mut x: Option<f64> = None;
            for (s, &c) in series.iter().zip(&cursor) {
                if let Some((sx, _)) = s.points.get(c) {
                    assert!(
                        sx.is_finite(),
                        "Series::print_table: non-finite x {sx} in series {:?}",
                        s.name
                    );
                    x = Some(match x {
                        None => *sx,
                        Some(m) => m.min(*sx),
                    });
                }
            }
            let Some(x) = x else { break };
            let mut row = Vec::with_capacity(series.len());
            for (s, c) in series.iter().zip(cursor.iter_mut()) {
                match s.points.get(*c) {
                    Some((sx, y)) if *sx == x => {
                        row.push(Some(*y));
                        *c += 1;
                    }
                    _ => row.push(None),
                }
            }
            rows.push((x, row));
        }
        rows
    }
}

/// Result of running a routing computation to convergence.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Convergence latency in seconds of simulated time (from query issue to
    /// the last change of the result set), when the run converged.
    pub convergence_s: Option<f64>,
    /// Per-node communication overhead in KB over the whole run.
    pub per_node_kb: f64,
    /// Number of finite-cost result tuples (routes) at the end.
    pub routes: usize,
    /// Average result cost at the end (AvgPathRTT when costs are RTTs).
    pub avg_cost: f64,
}

impl RunOutcome {
    /// Read the outcome of a single-query scenario report.
    pub fn of(report: &ScenarioReport) -> RunOutcome {
        let q = report.queries.first().expect("scenario issued a query");
        RunOutcome {
            convergence_s: q.converged_at.map(|t| t.as_secs_f64()),
            per_node_kb: report.per_node_overhead_kb,
            routes: q.final_results(),
            avg_cost: q.final_avg_cost(),
        }
    }
}

/// Run the all-pairs Best-Path query (issued at node 0 at t=0) over
/// `topology` until `horizon`, sampling every `sample` to detect
/// convergence.
pub fn run_best_path_query(
    topology: Topology,
    horizon: SimTime,
    sample: SimDuration,
) -> RunOutcome {
    let report = ScenarioBuilder::over(topology)
        .query(QueryDef::new(best_path()))
        .sample_every(sample)
        .until(horizon)
        .run()
        .expect("best-path scenario must localize and decode");
    RunOutcome::of(&report)
}

/// Run the hand-coded path-vector baseline over `topology` until `horizon`,
/// sampling every `sample`.
pub fn run_path_vector_baseline(
    topology: Topology,
    horizon: SimTime,
    sample: SimDuration,
) -> RunOutcome {
    let n = topology.num_nodes();
    let apps: Vec<PathVectorNode> =
        (0..n).map(|_| PathVectorNode::new(PathVectorConfig::default())).collect();
    let mut sim = Simulator::new(topology, apps, SimConfig::default());

    let mut last_state = (0usize, 0.0f64);
    let mut converged_at: Option<f64> = None;
    let mut t = SimTime::ZERO;
    while t < horizon {
        t += sample;
        sim.run_until(t);
        let routes: usize = sim.apps().map(|a| a.reachable_destinations()).sum();
        let total_cost: f64 = sim
            .apps()
            .flat_map(|a| a.routes().values())
            .filter(|r| r.cost.is_finite())
            .map(|r| r.cost.value())
            .sum();
        let avg = if routes > 0 { total_cost / routes as f64 } else { 0.0 };
        if (routes, avg) != last_state {
            last_state = (routes, avg);
            converged_at = Some(t.as_secs_f64());
        }
        if sim.events_processed() > 0 && routes > 0 && sim_quiet(&sim) {
            break;
        }
    }
    RunOutcome {
        convergence_s: converged_at,
        per_node_kb: sim.metrics().per_node_overhead_kb(),
        routes: last_state.0,
        avg_cost: last_state.1,
    }
}

fn sim_quiet(sim: &Simulator<PathVectorNode>) -> bool {
    // A run is quiet when no further events would change anything; the
    // simulator exposes no direct "queue empty" probe, so we approximate by
    // checking that nothing was processed in the last sampling window. The
    // caller's loop already re-samples, so a false negative only costs time.
    let _ = sim;
    false
}

/// Finite best-path costs per (src, dst), read from each node's own store,
/// in integer milli-cost (so two runs can be compared exactly — identical
/// float sums round identically).
pub fn route_cost_map(
    harness: &dr_core::harness::RoutingHarness,
    handle: &dr_core::harness::QueryHandle,
    num_nodes: usize,
) -> std::collections::BTreeMap<(dr_types::NodeId, dr_types::NodeId), u64> {
    let mut out = std::collections::BTreeMap::new();
    for i in 0..num_nodes as u32 {
        let node = dr_types::NodeId::new(i);
        for route in handle.results_at(harness, node).expect("routes decode") {
            if route.src != node || !route.cost.is_finite() {
                continue;
            }
            out.insert((route.src, route.dst), (route.cost.value() * 1000.0).round() as u64);
        }
    }
    out
}

/// Measure the average RTT of the best paths found by an all-pairs query on
/// `topology` (used by Tables 1 and 2).
pub fn average_path_rtt(topology: Topology, horizon: SimTime) -> (f64, usize) {
    let outcome = run_best_path_query(topology, horizon, SimDuration::from_secs(2));
    (outcome.avg_cost, outcome.routes)
}

/// Average link RTT (cost metric) of a topology.
pub fn average_link_rtt(topology: &Topology) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (_, _, p) in topology.all_links() {
        if p.cost.is_finite() {
            total += p.cost.value();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_workloads::TransitStubParams;

    #[test]
    fn series_table_prints_aligned_columns() {
        let mut a = Series::new("query");
        a.push(100.0, 1.5);
        a.push(200.0, 2.5);
        let mut b = Series::new("pv");
        b.push(100.0, 1.0);
        b.push(200.0, 2.0);
        // just exercise the printer; output goes to stdout
        Series::print_table("nodes", &[a, b]);
    }

    #[test]
    fn series_table_merges_mismatched_axes() {
        // Regression: the printer used to take x values from the first
        // series only and pad the rest positionally, silently skewing any
        // figure whose series sampled different x values. The merge is
        // exercised here; the row structure is pinned by merge_rows below.
        let mut a = Series::new("a");
        a.push(1.0, 10.0);
        a.push(3.0, 30.0);
        let mut b = Series::new("b");
        b.push(2.0, 20.0);
        b.push(3.0, 31.0);
        b.push(4.0, 40.0);
        Series::print_table("x", &[a, b]);
    }

    #[test]
    fn mismatched_axes_merge_on_x_instead_of_position() {
        let a = Series::from_points("a", &[(1.0, 10.0), (3.0, 30.0)]);
        let b = Series::from_points("b", &[(2.0, 20.0), (3.0, 31.0), (4.0, 40.0)]);
        let rows = Series::merge_rows(&[a, b]);
        assert_eq!(
            rows,
            vec![
                (1.0, vec![Some(10.0), None]),
                (2.0, vec![None, Some(20.0)]),
                (3.0, vec![Some(30.0), Some(31.0)]),
                (4.0, vec![None, Some(40.0)]),
            ]
        );
        // Shared axes collapse to one row per x (the common figure case).
        let a = Series::from_points("a", &[(1.0, 10.0), (2.0, 11.0)]);
        let b = Series::from_points("b", &[(1.0, 20.0), (2.0, 21.0)]);
        let rows = Series::merge_rows(&[a, b]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|(_, cells)| cells.iter().all(Option::is_some)));
    }

    #[test]
    fn query_and_baseline_agree_on_a_small_network() {
        let topo = TransitStubParams {
            domains: 1,
            transit_nodes_per_domain: 2,
            stubs_per_transit_node: 1,
            nodes_per_stub: 4,
            ..TransitStubParams::default()
        }
        .generate();
        let n = topo.num_nodes();
        let q =
            run_best_path_query(topo.clone(), SimTime::from_secs(60), SimDuration::from_secs(1));
        let pv = run_path_vector_baseline(topo, SimTime::from_secs(60), SimDuration::from_secs(1));
        assert_eq!(q.routes, n * (n - 1), "query must find all pairs");
        assert_eq!(pv.routes, n * (n - 1), "baseline must find all pairs");
        // both optimise the same metric, so average path costs agree closely
        assert!(
            (q.avg_cost - pv.avg_cost).abs() < 1e-6,
            "query avg {} vs baseline avg {}",
            q.avg_cost,
            pv.avg_cost
        );
        assert!(q.convergence_s.is_some());
        assert!(q.per_node_kb > 0.0);
        assert!(pv.per_node_kb > 0.0);
    }

    #[test]
    fn average_link_rtt_matches_topology() {
        let topo = TransitStubParams::sized(100, 3).generate();
        let avg = average_link_rtt(&topo);
        assert!(avg > 0.0 && avg < 50.0);
        assert_eq!(average_link_rtt(&dr_netsim::Topology::new(3)), 0.0);
    }
}
