//! Dynamic Source Routing (§5.3): the left-recursive twin of the
//! Network-Reachability query.
//!
//! The paper's key observation is that DSR and the distance-vector style
//! queries "differ only in a simple, traditional query optimization
//! decision: the order in which a query's predicates are evaluated". Here
//! the recursive `path` atom appears to the *left* of the `link` atom, so
//! newly computed paths are shipped to their current endpoint to find the
//! next link, exactly like DSR's route discovery.

use crate::parse;
use dr_datalog::ast::Program;

/// Rules NR1 + DSR1 with the cycle check, plus best-path selection at the
/// source (BPR1/BPR2) so the query produces the same result relation as
/// [`crate::best_path()`].
pub fn dynamic_source_routing() -> Program {
    parse(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        DSR1: path(@S,D,P,C) :- path(@S,Z,P1,C1), link(@Z,D,C2),
              C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
        "#,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_path::best_path;
    use dr_datalog::rewrite::{recursion_direction, RecursionDirection};
    use dr_datalog::{Database, Evaluator};
    use dr_types::{NodeId, Tuple, Value};

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(
            "link",
            vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(c)],
        )
    }

    #[test]
    fn recursion_is_left() {
        let p = dynamic_source_routing();
        let dsr1 = p.rule("DSR1").unwrap();
        assert_eq!(recursion_direction(dsr1), Some(RecursionDirection::Left));
        // and the right-recursive twin is indeed right recursive
        let bp = best_path();
        assert_eq!(recursion_direction(bp.rule("NR2").unwrap()), Some(RecursionDirection::Right));
    }

    #[test]
    fn agrees_with_right_recursive_best_path() {
        // §5.3: "The query semantics do not change if we flip the order of
        // path and link in the body of these rules."
        let mut db_left = Database::new();
        let mut db_right = Database::new();
        for (s, d, c) in [
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 2, 2.0),
            (2, 1, 2.0),
            (0, 2, 5.0),
            (2, 0, 5.0),
            (2, 3, 1.0),
            (3, 2, 1.0),
        ] {
            db_left.insert(link(s, d, c));
            db_right.insert(link(s, d, c));
        }
        Evaluator::new(dynamic_source_routing()).unwrap().run(&mut db_left).unwrap();
        Evaluator::new(best_path()).unwrap().run(&mut db_right).unwrap();
        assert_eq!(db_left.sorted_tuples("bestPathCost"), db_right.sorted_tuples("bestPathCost"));
        assert_eq!(db_left.sorted_tuples("bestPath"), db_right.sorted_tuples("bestPath"));
    }
}
