//! The Link-State query of §5.4: flood every link to every node, then run a
//! local best-path computation over the flooded link database.

use crate::parse;
use dr_datalog::ast::Program;

/// Rules LS1/LS2 (link flooding) plus a local Dijkstra-equivalent expressed
/// over the flooded `floodLink` tuples.
///
/// `floodLink(@M,S,D,C,N)` means: node `M` knows about the link `S→D` with
/// cost `C`, and learned it from neighbor `N`. Rule LS2 forwards the tuple
/// to all neighbors except the one it came from; Datalog's set semantics
/// stop the flood ("duplicate tuples are not considered for computation
/// twice").
pub fn link_state() -> Program {
    parse(
        r#"
        #key(link, 0, 1).
        #key(lsPath, 0, 1, 2).
        #key(lsBestCost, 0, 1).
        #key(lsBest, 0, 1).
        LS1: floodLink(@S,S,D,C,S) :- link(@S,D,C).
        LS2: floodLink(@M,S,D,C,N) :- link(@N,M,C1), floodLink(@N,S,D,C,W), M != W.
        // Local route computation over the flooded link database: every node
        // M computes best paths from itself using only locally stored
        // floodLink tuples (no further communication).
        LSP1: lsPath(@M,D,P,C) :- floodLink(@M,M,D,C,W), P = f_initPath(M,D).
        LSP2: lsPath(@M,D,P,C) :- lsPath(@M,Z,P1,C1), floodLink(@M,Z,D,C2,W2),
              C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
        LSB1: lsBestCost(@M,D,min<C>) :- lsPath(@M,D,P,C).
        LSB2: lsBest(@M,D,P,C) :- lsBestCost(@M,D,C), lsPath(@M,D,P,C).
        Query: lsBest(@M,D,P,C).
        "#,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{Database, Evaluator};
    use dr_types::{Cost, NodeId, Tuple, Value};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    #[test]
    fn links_are_flooded_to_every_node() {
        let mut db = Database::new();
        // line 0-1-2-3
        for i in 0..3u32 {
            db.insert(link(i, i + 1, 1.0));
            db.insert(link(i + 1, i, 1.0));
        }
        Evaluator::new(link_state()).unwrap().run(&mut db).unwrap();
        // every node ends up knowing all 6 directed links
        for node in 0..4u32 {
            let known: Vec<Tuple> = db
                .tuples("floodLink")
                .into_iter()
                .filter(|t| t.node_at(0) == Some(n(node)))
                .collect();
            let mut links: Vec<(NodeId, NodeId)> =
                known.iter().map(|t| (t.node_at(1).unwrap(), t.node_at(2).unwrap())).collect();
            links.sort();
            links.dedup();
            assert_eq!(links.len(), 6, "node {node} is missing flooded links");
        }
    }

    #[test]
    fn local_computation_yields_shortest_paths() {
        let mut db = Database::new();
        for (s, d, c) in
            [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0), (0, 2, 5.0), (2, 0, 5.0)]
        {
            db.insert(link(s, d, c));
        }
        Evaluator::new(link_state()).unwrap().run(&mut db).unwrap();
        let best = db
            .tuples("lsBest")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(0)) && t.node_at(1) == Some(n(2)))
            .unwrap();
        assert_eq!(best.field(3).and_then(Value::as_cost), Some(Cost::new(2.0)));
        let p = best.field(2).and_then(Value::as_path).unwrap();
        assert_eq!(p.nodes(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn flood_does_not_bounce_back_to_sender() {
        let mut db = Database::new();
        db.insert(link(0, 1, 1.0));
        db.insert(link(1, 0, 1.0));
        Evaluator::new(link_state()).unwrap().run(&mut db).unwrap();
        // floodLink at node 0 about link 1->0 learned from 1 exists, but no
        // tuple where a node re-learns its own link from itself via the
        // neighbor it sent it to (M != W guard).
        for t in db.tuples("floodLink") {
            let m = t.node_at(0).unwrap();
            let learned_from = t.node_at(4).unwrap();
            if m != learned_from {
                assert_ne!(m, learned_from);
            }
        }
        assert!(db.count("floodLink") >= 4);
    }
}
