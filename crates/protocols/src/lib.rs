//! # dr-protocols
//!
//! Every routing protocol the paper expresses as a declarative query
//! (§3 and §5), packaged as builder functions that return parsed
//! [`Program`]s ready for centralized evaluation (`dr-datalog`) or
//! distributed execution (`dr-core`).
//!
//! | Paper | Builder |
//! |---|---|
//! | Network-Reachability (§3.2) | [`reachability::network_reachability`] |
//! | Distance-Vector + split horizon / poison reverse (§3.6) | [`distance_vector::distance_vector`], [`distance_vector::distance_vector_poison_reverse`] |
//! | Best-Path with pluggable metric (§5.1) | [`best_path::best_path`], [`best_path::best_path_for_metric`] |
//! | QoS-constrained Best-Path (§5.1) | [`best_path::best_path_with_cost_bound`] |
//! | Policy-Based Routing (§5.2) | [`policy::policy_routing`] |
//! | Dynamic Source Routing (§5.3) | [`dsr::dynamic_source_routing`] |
//! | Link-State flooding (§5.4) | [`link_state::link_state`] |
//! | Source-Specific Multicast (§5.5) | [`multicast::source_specific_multicast`] |
//! | Best-Path-Pairs (magic sets + left recursion, §7.2) | [`pairs::best_path_pairs`] |
//! | Best-Path-Pairs-Share (§7.3) | [`pairs::best_path_pairs_share`] |
//!
//! The concrete rules follow the paper's, with the syntactic adaptations
//! documented in `dr-datalog::parser` (the `@` location annotation and the
//! `f_initPath`/`f_prepend`/`f_append` spellings of `f_concatPath`). Rules
//! NR3/DV-poison that the paper introduces for incremental maintenance of
//! long-lived routes (§8) are included in the continuous variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod best_path;
pub mod distance_vector;
pub mod dsr;
pub mod link_state;
pub mod multicast;
pub mod pairs;
pub mod policy;
pub mod reachability;

pub use best_path::{best_path, best_path_for_metric, best_path_with_cost_bound, PathMetric};
pub use distance_vector::{distance_vector, distance_vector_poison_reverse};
pub use dsr::dynamic_source_routing;
pub use link_state::link_state;
pub use multicast::source_specific_multicast;
pub use pairs::{best_path_pairs, best_path_pairs_share};
pub use policy::policy_routing;
pub use reachability::network_reachability;

use dr_datalog::ast::Program;
use dr_datalog::parse_program;

/// Interned ids of the relation vocabulary the built-in protocols share.
///
/// Every builder in this crate returns an *interned* program — parsing
/// mints the dense [`dr_types::RelId`] of every relation it names — and
/// these accessors hand consumers (experiments, tests, custom tooling) the
/// same ids without spelling the names twice. Each call is a pure intern
/// lookup.
pub mod rels {
    use dr_types::RelId;

    /// `link(@S,D,C)` — the neighbor-table base relation every protocol
    /// joins against.
    pub fn link() -> RelId {
        RelId::intern("link")
    }

    /// `path(@S,D,P,C)` — the path-vector relation of the Best-Path family.
    pub fn path() -> RelId {
        RelId::intern("path")
    }

    /// `bestPath(@S,D,P,C)` — the Best-Path result relation.
    pub fn best_path() -> RelId {
        RelId::intern("bestPath")
    }

    /// `bestPathCost(@S,D,C)` — the Best-Path aggregate relation.
    pub fn best_path_cost() -> RelId {
        RelId::intern("bestPathCost")
    }

    /// `bestPathCache(@N,D,P,C)` — the default cross-query sharing cache
    /// (§7.3).
    pub fn best_path_cache() -> RelId {
        RelId::intern("bestPathCache")
    }

    /// `magicSources(@S)` — the magic-sets seed relation (§7.2).
    pub fn magic_sources() -> RelId {
        RelId::intern("magicSources")
    }

    /// `magicDsts(@D)` — the pair-query destination filter (§7.2).
    pub fn magic_dsts() -> RelId {
        RelId::intern("magicDsts")
    }
}

/// Parse a protocol source string, panicking on error.
///
/// Protocol sources are compile-time constants written in this crate; a
/// parse failure is a bug in the crate, not a runtime condition, so the
/// builders unwrap through this helper (and the test suite parses every
/// protocol).
pub(crate) fn parse(src: &str) -> Program {
    parse_program(src).unwrap_or_else(|e| panic!("invalid built-in protocol source: {e}\n{src}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{check_safety, Evaluator};

    /// Every protocol program must parse, stratify, and pass the paper's
    /// safety/termination analysis (§6).
    #[test]
    fn all_protocols_are_safe_and_evaluable() {
        let programs: Vec<(&str, Program)> = vec![
            ("network_reachability", network_reachability()),
            ("best_path", best_path()),
            ("best_path_bw", best_path_for_metric(PathMetric::WidestPath)),
            ("best_path_hops", best_path_for_metric(PathMetric::HopCount)),
            ("best_path_qos", best_path_with_cost_bound(50.0)),
            ("distance_vector", distance_vector(16.0)),
            ("dv_poison", distance_vector_poison_reverse(16.0)),
            ("dsr", dynamic_source_routing()),
            ("link_state", link_state()),
            ("policy", policy_routing()),
            ("multicast", source_specific_multicast(dr_types::NodeId::new(0), "g1")),
            ("pairs", best_path_pairs(dr_types::NodeId::new(0), dr_types::NodeId::new(1))),
            (
                "pairs_share",
                best_path_pairs_share(
                    dr_types::NodeId::new(0),
                    dr_types::NodeId::new(1),
                    "bestPathCache",
                ),
            ),
        ];
        for (name, program) in programs {
            assert!(!program.rules.is_empty(), "{name} has no rules");
            let report = check_safety(&program);
            assert!(report.is_safe(), "{name} failed the safety analysis: {report}");
            // Each program must also be accepted by the evaluator (catalog +
            // stratification succeed).
            Evaluator::new(program).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
