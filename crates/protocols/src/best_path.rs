//! The Best-Path query family of §5.1: all-pairs best paths under a
//! pluggable metric, optional QoS bounds, and the continuous-query variant
//! with the ∞-poisoning rule NR3 used for long-lived routes (§8).

use crate::parse;
use dr_datalog::ast::Program;

/// The path metric a Best-Path query optimises (the paper's `f_compute` /
/// `AGG` instantiations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMetric {
    /// Sum of link costs, minimised (shortest latency / RTT paths — the
    /// metric of every evaluation experiment).
    ShortestCost,
    /// Number of hops, minimised.
    HopCount,
    /// Bottleneck (minimum) link capacity along the path, maximised
    /// ("max-flow paths" in §7.3's merged-query example).
    WidestPath,
}

/// The Best-Path query with the `ShortestCost` metric and the continuous
/// maintenance rule NR3 — this is the query used by the paper's simulation
/// and PlanetLab experiments (all-pairs shortest / shortest-RTT paths).
pub fn best_path() -> Program {
    best_path_for_metric(PathMetric::ShortestCost)
}

/// The Best-Path query for an arbitrary [`PathMetric`].
pub fn best_path_for_metric(metric: PathMetric) -> Program {
    let (compute, agg) = match metric {
        PathMetric::ShortestCost => ("C = C1 + C2", "min"),
        PathMetric::HopCount => ("C = f_hops(P)", "min"),
        PathMetric::WidestPath => ("C = f_min(C1,C2)", "max"),
    };
    let one_hop_cost = match metric {
        PathMetric::HopCount => "C = 1",
        _ => "C = C0",
    };
    parse(&format!(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C0), P = f_initPath(S,D), {one_hop_cost}.
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             P = f_prepend(S,P2), {compute}, f_inPath(P2,S) = false.
        NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
             f_inPath(P,W) = true, C1 = infinity, C = infinity.
        BPR1: bestPathCost(@S,D,{agg}<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
        "#
    ))
}

/// Best-Path restricted to paths whose cost stays below `bound` — the QoS
/// constraint of §5.1 ("we can restrict the set of paths to those with costs
/// below a loss or latency threshold k by adding an extra constraint C<k").
pub fn best_path_with_cost_bound(bound: f64) -> Program {
    parse(&format!(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D), C < {bound}.
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false, C < {bound}.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        Query: bestPath(@S,D,P,C).
        "#
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{Database, Evaluator};
    use dr_types::{Cost, NodeId, Tuple, Value};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    fn diamond(db: &mut Database) {
        // 0 -> 1 -> 3 (cost 1 + 1), 0 -> 2 -> 3 (cost 5 + 1), 0 -> 3 direct (cost 10)
        for (s, d, c) in [
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 3, 1.0),
            (3, 1, 1.0),
            (0, 2, 5.0),
            (2, 0, 5.0),
            (2, 3, 1.0),
            (3, 2, 1.0),
            (0, 3, 10.0),
            (3, 0, 10.0),
        ] {
            db.insert(link(s, d, c));
        }
    }

    fn best_cost(db: &Database, s: u32, d: u32) -> Option<f64> {
        db.tuples("bestPathCost")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(s)) && t.node_at(1) == Some(n(d)))
            .and_then(|t| t.field(2).and_then(Value::as_cost))
            .map(Cost::value)
    }

    #[test]
    fn shortest_cost_picks_cheapest_route() {
        let mut db = Database::new();
        diamond(&mut db);
        Evaluator::new(best_path()).unwrap().run(&mut db).unwrap();
        assert_eq!(best_cost(&db, 0, 3), Some(2.0));
        assert_eq!(best_cost(&db, 2, 1), Some(2.0));
        // best path tuple carries the matching vector
        let bp = db
            .tuples("bestPath")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(0)) && t.node_at(1) == Some(n(3)))
            .unwrap();
        let p = bp.field(2).and_then(Value::as_path).unwrap().clone();
        assert_eq!(p.nodes(), &[n(0), n(1), n(3)]);
    }

    #[test]
    fn hop_count_ignores_link_costs() {
        let mut db = Database::new();
        diamond(&mut db);
        Evaluator::new(best_path_for_metric(PathMetric::HopCount)).unwrap().run(&mut db).unwrap();
        // Direct 0->3 is one hop, cheaper by hop count despite cost 10.
        assert_eq!(best_cost(&db, 0, 3), Some(1.0));
    }

    #[test]
    fn widest_path_maximises_bottleneck() {
        let mut db = Database::new();
        // 0->1->3 bottleneck 4; 0->3 direct capacity 2
        for (s, d, c) in [(0, 1, 4.0), (1, 3, 5.0), (0, 3, 2.0)] {
            db.insert(link(s, d, c));
        }
        Evaluator::new(best_path_for_metric(PathMetric::WidestPath)).unwrap().run(&mut db).unwrap();
        assert_eq!(best_cost(&db, 0, 3), Some(4.0));
    }

    #[test]
    fn qos_bound_filters_expensive_paths() {
        let mut db = Database::new();
        diamond(&mut db);
        Evaluator::new(best_path_with_cost_bound(4.0)).unwrap().run(&mut db).unwrap();
        // 0->3 best (cost 2) is under the bound.
        assert_eq!(best_cost(&db, 0, 3), Some(2.0));
        // 0->2 direct costs 5 which exceeds the bound; the detour 0-1-3-2
        // costs 3 and is admitted instead.
        assert_eq!(best_cost(&db, 0, 2), Some(3.0));

        let mut strict = Database::new();
        diamond(&mut strict);
        Evaluator::new(best_path_with_cost_bound(1.5)).unwrap().run(&mut strict).unwrap();
        // Only unit-cost one-hop paths survive a 1.5 bound.
        assert!(best_cost(&strict, 0, 3).is_none());
        assert_eq!(best_cost(&strict, 0, 1), Some(1.0));
    }

    #[test]
    fn poisoning_rule_marks_paths_through_dead_links() {
        let mut db = Database::new();
        // 0 -> 1 -> 2 and the link 1->2 dead from the start.
        db.insert(link(0, 1, 1.0));
        db.insert(link(1, 2, 1.0));
        Evaluator::new(best_path()).unwrap().run(&mut db).unwrap();
        assert_eq!(best_cost(&db, 0, 2), Some(2.0));

        // Re-run with the link poisoned: the path through it is ∞.
        let mut db2 = Database::new();
        db2.declare_key("link", vec![0, 1]);
        db2.insert(link(0, 1, 1.0));
        db2.insert(link(1, 2, f64::INFINITY));
        Evaluator::new(best_path()).unwrap().run(&mut db2).unwrap();
        assert_eq!(best_cost(&db2, 0, 2), Some(f64::INFINITY));
    }
}
