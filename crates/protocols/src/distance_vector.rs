//! The Distance-Vector query of §3.6, with and without the split-horizon /
//! poison-reverse fix for the count-to-infinity problem.
//!
//! The paper's DV rules keep only the next hop (`Z`) instead of the whole
//! path vector, so they cannot use a cycle check for termination; instead we
//! bound the admissible path cost (the classical "infinity" of RIP-style
//! protocols — 16 hops), which is also what makes the query pass the §6
//! termination analysis.

use crate::parse;
use dr_datalog::ast::Program;

/// Rules DV1–DV4: next-hop routing state (`nextHop(@S,D,Z,C)`) for every
/// pair, with `max_cost` playing the role of RIP's infinity.
pub fn distance_vector(max_cost: f64) -> Program {
    parse(&format!(
        r#"
        #key(link, 0, 1).
        #key(nextHop, 0, 1).
        #key(shortestCost, 0, 1).
        DV1: path(@S,D,D,C) :- link(@S,D,C).
        DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2),
             C = C1 + C2, C < {max_cost}.
        DV3: shortestCost(@S,D,min<C>) :- path(@S,D,Z,C).
        DV4: nextHop(@S,D,Z,C) :- path(@S,D,Z,C), shortestCost(@S,D,C), S != D.
        Query: nextHop(@S,D,Z,C).
        "#
    ))
}

/// The split-horizon with poison-reverse variant (rules DV2' and DV5):
/// a node never advertises a route back to the neighbor it learned it from,
/// and additionally poisons that reverse advertisement with infinite cost.
pub fn distance_vector_poison_reverse(max_cost: f64) -> Program {
    parse(&format!(
        r#"
        #key(link, 0, 1).
        #key(nextHop, 0, 1).
        #key(shortestCost, 0, 1).
        DV1: path(@S,D,D,C) :- link(@S,D,C).
        DV2: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,W,C2),
             C = C1 + C2, W != S, C < {max_cost}.
        DV5: path(@S,D,Z,C) :- link(@S,Z,C1), path(@Z,D,S,C2), C = infinity.
        DV3: shortestCost(@S,D,min<C>) :- path(@S,D,Z,C).
        DV4: nextHop(@S,D,Z,C) :- path(@S,D,Z,C), shortestCost(@S,D,C), S != D.
        Query: nextHop(@S,D,Z,C).
        "#
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{Database, Evaluator};
    use dr_types::{Cost, NodeId, Tuple, Value};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    fn line(db: &mut Database, costs: &[f64]) {
        for (i, c) in costs.iter().enumerate() {
            db.insert(link(i as u32, i as u32 + 1, *c));
            db.insert(link(i as u32 + 1, i as u32, *c));
        }
    }

    fn next_hop(db: &Database, s: u32, d: u32) -> Option<(NodeId, f64)> {
        db.tuples("nextHop")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(s)) && t.node_at(1) == Some(n(d)))
            .map(|t| {
                (
                    t.node_at(2).unwrap(),
                    t.field(3).and_then(Value::as_cost).map(Cost::value).unwrap(),
                )
            })
    }

    #[test]
    fn computes_next_hops_along_shortest_paths() {
        let mut db = Database::new();
        line(&mut db, &[1.0, 1.0, 1.0]);
        Evaluator::new(distance_vector(16.0)).unwrap().run(&mut db).unwrap();
        assert_eq!(next_hop(&db, 0, 3), Some((n(1), 3.0)));
        assert_eq!(next_hop(&db, 3, 0), Some((n(2), 3.0)));
        assert_eq!(next_hop(&db, 1, 2), Some((n(2), 1.0)));
    }

    #[test]
    fn prefers_cheaper_multihop_route() {
        let mut db = Database::new();
        db.insert(link(0, 1, 1.0));
        db.insert(link(1, 0, 1.0));
        db.insert(link(1, 2, 1.0));
        db.insert(link(2, 1, 1.0));
        db.insert(link(0, 2, 5.0));
        db.insert(link(2, 0, 5.0));
        Evaluator::new(distance_vector(16.0)).unwrap().run(&mut db).unwrap();
        assert_eq!(next_hop(&db, 0, 2), Some((n(1), 2.0)));
    }

    #[test]
    fn max_cost_bounds_reachability() {
        let mut db = Database::new();
        line(&mut db, &[10.0, 10.0]);
        Evaluator::new(distance_vector(16.0)).unwrap().run(&mut db).unwrap();
        // 0 -> 2 would cost 20 ≥ 16: unreachable under this "infinity".
        assert_eq!(next_hop(&db, 0, 2), None);
        assert!(next_hop(&db, 0, 1).is_some());
    }

    #[test]
    fn split_horizon_never_routes_back_through_the_learner() {
        let mut db = Database::new();
        line(&mut db, &[1.0, 1.0]);
        Evaluator::new(distance_vector_poison_reverse(16.0)).unwrap().run(&mut db).unwrap();
        // Identical answers on a healthy network.
        assert_eq!(next_hop(&db, 0, 2), Some((n(1), 2.0)));
        // DV5 poison entries exist (infinite-cost advertisements back to the
        // neighbor a route was learned from) but never win DV4.
        let poisoned: Vec<Tuple> = db
            .tuples("path")
            .into_iter()
            .filter(|t| {
                t.field(3).and_then(Value::as_cost).map(|c| c.is_infinite()).unwrap_or(false)
            })
            .collect();
        assert!(!poisoned.is_empty());
        for t in db.tuples("nextHop") {
            assert!(t.field(3).and_then(Value::as_cost).unwrap().is_finite());
        }
    }

    #[test]
    fn both_variants_agree_on_healthy_networks() {
        let mut a = Database::new();
        let mut b = Database::new();
        line(&mut a, &[1.0, 2.0, 3.0]);
        line(&mut b, &[1.0, 2.0, 3.0]);
        Evaluator::new(distance_vector(32.0)).unwrap().run(&mut a).unwrap();
        Evaluator::new(distance_vector_poison_reverse(32.0)).unwrap().run(&mut b).unwrap();
        assert_eq!(a.sorted_tuples("nextHop"), b.sorted_tuples("nextHop"));
    }
}
