//! The Network-Reachability query of §3.2 — the paper's first example.

use crate::parse;
use dr_datalog::ast::Program;

/// Rules NR1/NR2 plus the cycle check the paper adds in §3.2 / §6, computing
/// every simple path between every pair of reachable nodes.
///
/// ```text
/// NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_concatPath(link(S,D,C), nil).
/// NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
///      C = C1 + C2, P = f_concatPath(link(S,Z,C1), P2),
///      f_inPath(P2, S) = false.
/// Query: path(@S,D,P,C).
/// ```
pub fn network_reachability() -> Program {
    parse(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        Query: path(@S,D,P,C).
        "#,
    )
}

/// The same query restricted to paths originating at one source node (the
/// paper's `path(b, D, P, C)` variant: "If the query is only interested in
/// the paths from a given node b").
pub fn network_reachability_from(source: dr_types::NodeId) -> Program {
    let mut program = network_reachability();
    // Bind the query's source argument to the constant.
    for q in &mut program.queries {
        if let Some(t) = q.terms.get_mut(0) {
            *t = dr_datalog::ast::Term::Const(dr_types::Value::Node(source));
        }
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{Database, Evaluator};
    use dr_types::{NodeId, Tuple, Value};

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new(
            "link",
            vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(c)],
        )
    }

    #[test]
    fn computes_all_simple_paths() {
        let mut db = Database::new();
        // triangle
        for (s, d) in [(0, 1), (1, 2), (0, 2), (1, 0), (2, 1), (2, 0)] {
            db.insert(link(s, d, 1.0));
        }
        Evaluator::new(network_reachability()).unwrap().run(&mut db).unwrap();
        // From each node: 2 direct + 2 two-hop = 4 simple paths to others.
        assert_eq!(db.count("path"), 12);
        for t in db.tuples("path") {
            let p = t.field(2).and_then(Value::as_path).unwrap();
            assert!(!p.has_cycle());
        }
    }

    #[test]
    fn source_bound_variant_has_constant_in_query() {
        let p = network_reachability_from(NodeId::new(7));
        assert_eq!(
            p.queries[0].terms[0],
            dr_datalog::ast::Term::Const(Value::Node(NodeId::new(7)))
        );
        // rules untouched
        assert_eq!(p.rules.len(), network_reachability().rules.len());
    }
}
