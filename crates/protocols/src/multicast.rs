//! Source-Specific Multicast (§5.5): build a multicast dissemination tree
//! from a root toward every subscriber by sending join messages along the
//! subscribers' best paths to the root and installing forwarding state at
//! every hop.

use crate::parse;
use dr_datalog::ast::Program;
use dr_types::{NodeId, Tuple, Value};

/// Rules M1–M3 layered over the Best-Path query (NR1/NR2/BPR1/BPR2).
///
/// Subscribers issue `joinGroup(@N, source, group)` facts (built with
/// [`join_group_fact`]); the query sends `joinMessage` tuples hop by hop
/// along each subscriber's best path toward `source` and materialises
/// `forwardState(@I, J, source, group)` at every intermediate node `I`
/// (forward packets of `group` to `J`).
///
/// The `source`/`group` arguments only document intent — the rules are
/// generic and serve any number of groups at once; the per-issuance facts
/// select the actual root and group id.
pub fn source_specific_multicast(_source: NodeId, _group: &str) -> Program {
    parse(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        #key(forwardState, 0, 1, 2, 3).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
        BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
        // M1: the subscriber N creates the first join message, addressed to
        // the first hop I of its best path toward the source S; P is the
        // remainder of that path (starting at I).
        M1: joinMessage(@I,N,P,S,G) :- joinGroup(@N,S,G), bestPath(@N,S,P1,C),
            P2 = f_tail(P1), I = f_head(P2), P = P2.
        // M2: each intermediate node I forwards the join along the remaining
        // path; J is the node the message came from.
        M2: joinMessage(@I,J,P,S,G) :- joinMessage(@J,K,P1,S,G),
            P2 = f_tail(P1), f_isEmpty(P2) = false, I = f_head(P2), P = P2.
        // M3: receiving a join installs forwarding state: packets of group G
        // from source S received at I are forwarded to J (toward the
        // subscriber).
        M3: forwardState(@I,J,S,G) :- joinMessage(@I,J,P,S,G).
        Query: forwardState(@I,J,S,G).
        "#,
    )
}

/// Build a `joinGroup(@subscriber, source, group)` fact.
pub fn join_group_fact(subscriber: NodeId, source: NodeId, group: &str) -> Tuple {
    Tuple::new("joinGroup", vec![Value::Node(subscriber), Value::Node(source), Value::str(group)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{Database, Evaluator};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    /// Star-ish tree: 0 - 1 - 2 and 1 - 3; source at 0, subscribers at 2, 3.
    fn tree(db: &mut Database) {
        for (s, d) in [(0, 1), (1, 2), (1, 3)] {
            db.insert(link(s, d, 1.0));
            db.insert(link(d, s, 1.0));
        }
    }

    fn forward_state(db: &Database) -> Vec<(NodeId, NodeId)> {
        let mut v: Vec<(NodeId, NodeId)> = db
            .tuples("forwardState")
            .into_iter()
            .map(|t| (t.node_at(0).unwrap(), t.node_at(1).unwrap()))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn builds_forwarding_tree_toward_subscribers() {
        let mut db = Database::new();
        tree(&mut db);
        db.insert(join_group_fact(n(2), n(0), "g1"));
        db.insert(join_group_fact(n(3), n(0), "g1"));
        Evaluator::new(source_specific_multicast(n(0), "g1")).unwrap().run(&mut db).unwrap();

        let fs = forward_state(&db);
        // Join messages travel 2 -> 1 -> 0 and 3 -> 1 -> 0. Forwarding state:
        // node 1 forwards to 2 and 3, node 0 forwards to 1.
        assert!(fs.contains(&(n(1), n(2))), "state {fs:?}");
        assert!(fs.contains(&(n(1), n(3))), "state {fs:?}");
        assert!(fs.contains(&(n(0), n(1))), "state {fs:?}");
        // No forwarding state installed at leaf subscribers.
        assert!(!fs.iter().any(|(i, _)| *i == n(2) || *i == n(3)));
    }

    #[test]
    fn group_ids_are_tracked() {
        let mut db = Database::new();
        tree(&mut db);
        db.insert(join_group_fact(n(2), n(0), "blue"));
        db.insert(join_group_fact(n(3), n(0), "red"));
        Evaluator::new(source_specific_multicast(n(0), "any")).unwrap().run(&mut db).unwrap();
        let blue: Vec<Tuple> = db
            .tuples("forwardState")
            .into_iter()
            .filter(|t| t.field(3).and_then(Value::as_str) == Some("blue"))
            .collect();
        let red: Vec<Tuple> = db
            .tuples("forwardState")
            .into_iter()
            .filter(|t| t.field(3).and_then(Value::as_str) == Some("red"))
            .collect();
        // blue tree reaches node 2 only, red tree node 3 only
        assert!(blue.iter().any(|t| t.node_at(1) == Some(n(2))));
        assert!(!blue.iter().any(|t| t.node_at(1) == Some(n(3))));
        assert!(red.iter().any(|t| t.node_at(1) == Some(n(3))));
        assert!(!red.iter().any(|t| t.node_at(1) == Some(n(2))));
    }

    #[test]
    fn join_fact_shape() {
        let f = join_group_fact(n(5), n(0), "gid");
        assert_eq!(f.relation(), "joinGroup");
        assert_eq!(f.node_at(0), Some(n(5)));
        assert_eq!(f.node_at(1), Some(n(0)));
        assert_eq!(f.field(2).and_then(Value::as_str), Some("gid"));
    }
}
