//! Policy-Based Routing (§5.2): exclude paths that traverse "undesirable"
//! nodes listed in a per-node `excludeNode` table.

use crate::parse;
use dr_datalog::ast::Program;
use dr_types::{NodeId, Tuple, Value};

/// Rules NR1/NR2 + PBR1 (+ best-path selection over the permitted paths).
///
/// `excludeNode(@S,W)` is a base table stored at each node `S`: "node S does
/// not carry any traffic for node W". [`exclude_fact`] builds its tuples.
pub fn policy_routing() -> Program {
    parse(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(bestPermittedCost, 0, 1).
        #key(bestPermitted, 0, 1).
        NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
        NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
             C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
        PBR1: permitPath(@S,D,P,C) :- path(@S,D,P,C), excludeNode(@S,W),
              f_inPath(P,W) = false.
        BPR1: bestPermittedCost(@S,D,min<C>) :- permitPath(@S,D,P,C).
        BPR2: bestPermitted(@S,D,P,C) :- bestPermittedCost(@S,D,C), permitPath(@S,D,P,C).
        Query: permitPath(@S,D,P,C).
        Query: bestPermitted(@S,D,P,C).
        "#,
    )
}

/// Build an `excludeNode(@at, excluded)` base tuple.
pub fn exclude_fact(at: NodeId, excluded: NodeId) -> Tuple {
    Tuple::new("excludeNode", vec![Value::Node(at), Value::Node(excluded)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_datalog::{Database, Evaluator};
    use dr_types::Cost;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    #[test]
    fn excluded_nodes_are_avoided() {
        let mut db = Database::new();
        // 0-1-3 (cheap, through node 1) and 0-2-3 (expensive, through node 2)
        for (s, d, c) in [
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 3, 1.0),
            (3, 1, 1.0),
            (0, 2, 5.0),
            (2, 0, 5.0),
            (2, 3, 5.0),
            (3, 2, 5.0),
        ] {
            db.insert(link(s, d, c));
        }
        // node 0 refuses to route through node 1
        db.insert(exclude_fact(n(0), n(1)));
        Evaluator::new(policy_routing()).unwrap().run(&mut db).unwrap();

        let best_0_3 = db
            .tuples("bestPermitted")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(0)) && t.node_at(1) == Some(n(3)))
            .unwrap();
        assert_eq!(best_0_3.field(3).and_then(Value::as_cost), Some(Cost::new(10.0)));
        let p = best_0_3.field(2).and_then(Value::as_path).unwrap();
        assert!(!p.contains(n(1)), "permitted path must avoid node 1: {p}");

        // The unfiltered path table still contains the cheap route (the
        // policy acts as a filter, not a rewrite of path exploration).
        assert!(db.tuples("path").iter().any(|t| t.node_at(0) == Some(n(0))
            && t.node_at(1) == Some(n(3))
            && t.field(3).and_then(Value::as_cost) == Some(Cost::new(2.0))));
    }

    #[test]
    fn nodes_without_policy_see_no_permitted_paths() {
        // PBR1 joins with excludeNode, so a node with an empty policy table
        // produces no permitPath tuples — matching the paper's rule shape,
        // where the policy table is expected to exist at each node (a
        // "permit everything" entry can be expressed by excluding an address
        // that never appears in the network).
        let mut db = Database::new();
        db.insert(link(0, 1, 1.0));
        db.insert(exclude_fact(n(0), n(99)));
        Evaluator::new(policy_routing()).unwrap().run(&mut db).unwrap();
        let permitted = db.tuples("permitPath");
        assert_eq!(permitted.len(), 1);
        assert_eq!(permitted[0].node_at(0), Some(n(0)));
    }

    #[test]
    fn exclude_fact_shape() {
        let f = exclude_fact(n(3), n(7));
        assert_eq!(f.relation(), "excludeNode");
        assert_eq!(f.node_at(0), Some(n(3)));
        assert_eq!(f.node_at(1), Some(n(7)));
    }
}
