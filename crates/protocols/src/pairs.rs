//! Source/destination route requests: the Best-Path-Pairs query of §7.2
//! (magic sets + left-right recursion rewrite) and its work-sharing variant
//! Best-Path-Pairs-Share of §7.3.
//!
//! These are the queries behind Figures 7–9: instead of computing all-pairs
//! paths, each query computes the best path between one source and one
//! destination. Following the paper's footnote 4, path tuples are stored at
//! the *destination* of the partial path ("the optimal tuple placement
//! strategy that minimizes communication overhead"), which makes every rule
//! body local to one node; only head tuples travel, one hop at a time, and
//! the final result is returned to the source along the reverse path.

use crate::parse;
use dr_datalog::ast::Program;
use dr_types::{NodeId, Tuple, Value};

/// The Best-Path-Pairs query (rules BPP1–BPP7): the best path from `source`
/// to `destination`, computed with left recursion restricted by
/// `magicSources` / `magicDsts` constants.
///
/// Issue with facts [`magic_source_fact`]`(source)` and
/// [`magic_dst_fact`]`(destination)`; the result relation is
/// `bestPathSrc(@S,D,P,C)`, stored at the source.
pub fn best_path_pairs(source: NodeId, destination: NodeId) -> Program {
    let mut program = parse(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(pathCost, 0, 1).
        #key(pathDst, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        #key(bestPathSrc, 0, 1).
        BPP1: path(S,@D,P,C) :- magicSources(@S), link(@S,D,C), P = f_initPath(S,D).
        BPP2: path(S,@D,P,C) :- path(S,@Z,P1,C1), link(@Z,D,C2),
              C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
        // Aggregate over partial paths: enables the aggregate-selection
        // optimization (§7.1) to prune dominated partial paths during the
        // left-recursive exploration.
        BPPA: pathCost(S,@D,min<C>) :- path(S,@D,P,C).
        BPP3: pathDst(S,@D,P,C) :- magicDsts(@D), path(S,@D,P,C).
        BPP4: bestPathCost(S,@D,min<C>) :- pathDst(S,@D,P,C).
        BPP5: bestPath(S,@D,P,C) :- bestPathCost(S,@D,C), pathDst(S,@D,P,C).
        // "Two extra rules not shown" in the paper: return the result to the
        // source along the reverse path.
        BPP6: bestPathSrc(@S,D,P,C) :- bestPath(S,@D,P,C).
        Query: bestPathSrc(@S,D,P,C).
        "#,
    );
    program.rules.push(magic_fact_rule("magicSources", source));
    program.rules.push(magic_fact_rule("magicDsts", destination));
    program
}

/// The Best-Path-Pairs-Share query (§7.3): as [`best_path_pairs`], but the
/// left-recursive exploration stops at nodes that already hold a cached best
/// path to the destination (rule BPPS2 reuses the cache, rule BPPS1 explores
/// only in its absence).
///
/// `cache_relation` names the cross-query cache table (use different names
/// for different metrics so incomparable costs never mix). Issue with
/// `share_results` enabled and `magicDsts` replicated so every node on the
/// exploration frontier can check whether the destination is of interest.
pub fn best_path_pairs_share(source: NodeId, destination: NodeId, cache_relation: &str) -> Program {
    let mut program = parse(&format!(
        r#"
        #key(link, 0, 1).
        #key(path, 0, 1, 2).
        #key(pathCost, 0, 1).
        #key(pathDst, 0, 1, 2).
        #key(bestPathCost, 0, 1).
        #key(bestPath, 0, 1).
        #key(bestPathSrc, 0, 1).
        #key({cache}, 0, 1).
        BPP1: path(S,@D,P,C) :- magicSources(@S), link(@S,D,C), P = f_initPath(S,D).
        // BPPS1: explore onward only when no cached best path to a
        // destination of interest exists at the current node.
        BPPS1: path(S,@D,P,C) :- magicDsts(@D3), path(S,@Z,P1,C1), link(@Z,D,C2),
               !{cache}(@Z,D3,P3,C3),
               C = C1 + C2, P = f_append(P1,D), f_inPath(P1,D) = false.
        // BPPS2: splice the cached remainder onto the partial path.
        BPPS2: path(S,@D,P,C) :- magicDsts(@D), path(S,@Z,P1,C1), {cache}(@Z,D,P2,C2),
               C = C1 + C2, P = f_concat(P1,P2), f_hasCycle(P) = false.
        BPPA: pathCost(S,@D,min<C>) :- path(S,@D,P,C).
        BPP3: pathDst(S,@D,P,C) :- magicDsts(@D), path(S,@D,P,C).
        BPP4: bestPathCost(S,@D,min<C>) :- pathDst(S,@D,P,C).
        BPP5: bestPath(S,@D,P,C) :- bestPathCost(S,@D,C), pathDst(S,@D,P,C).
        BPP6: bestPathSrc(@S,D,P,C) :- bestPath(S,@D,P,C).
        Query: bestPathSrc(@S,D,P,C).
        "#,
        cache = cache_relation
    ));
    program.rules.push(magic_fact_rule("magicSources", source));
    program.rules.push(magic_fact_rule("magicDsts", destination));
    program
}

/// A `magicSources(@node)` fact as a tuple (for installation via query
/// facts rather than program rules). Built on the interned id, so the fact
/// is identical to what the parsed program's atoms resolve to.
pub fn magic_source_fact(node: NodeId) -> Tuple {
    Tuple::from_rel(crate::rels::magic_sources(), vec![Value::Node(node)])
}

/// A `magicDsts(@node)` fact as a tuple.
pub fn magic_dst_fact(node: NodeId) -> Tuple {
    Tuple::from_rel(crate::rels::magic_dsts(), vec![Value::Node(node)])
}

fn magic_fact_rule(relation: &str, node: NodeId) -> dr_datalog::ast::Rule {
    use dr_datalog::ast::{Head, Rule, Term};
    Rule::new(Head::plain(relation, vec![Term::Const(Value::Node(node))], Some(0)), vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::best_path::best_path;
    use dr_datalog::{Database, Evaluator};
    use dr_types::Cost;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn link(s: u32, d: u32, c: f64) -> Tuple {
        Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
    }

    fn diamond(db: &mut Database) {
        for (s, d, c) in [
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 3, 1.0),
            (3, 1, 1.0),
            (0, 2, 2.0),
            (2, 0, 2.0),
            (2, 3, 2.0),
            (3, 2, 2.0),
            (3, 4, 1.0),
            (4, 3, 1.0),
        ] {
            db.insert(link(s, d, c));
        }
    }

    fn best_src(db: &Database, s: u32, d: u32) -> Option<(Vec<NodeId>, f64)> {
        db.tuples("bestPathSrc")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(s)) && t.node_at(1) == Some(n(d)))
            .map(|t| {
                (
                    t.field(2).and_then(Value::as_path).unwrap().nodes().to_vec(),
                    t.field(3).and_then(Value::as_cost).map(Cost::value).unwrap(),
                )
            })
    }

    #[test]
    fn computes_only_the_requested_pair() {
        let mut db = Database::new();
        diamond(&mut db);
        Evaluator::new(best_path_pairs(n(0), n(4))).unwrap().run(&mut db).unwrap();
        let (path, cost) = best_src(&db, 0, 4).unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(path, vec![n(0), n(1), n(3), n(4)]);
        // only one result pair exists
        assert_eq!(db.count("bestPathSrc"), 1);
        // exploration is restricted to paths originating at the magic source
        for t in db.tuples("path") {
            assert_eq!(t.node_at(0), Some(n(0)));
        }
    }

    #[test]
    fn matches_all_pairs_best_path_answer() {
        let mut pairs_db = Database::new();
        let mut full_db = Database::new();
        diamond(&mut pairs_db);
        diamond(&mut full_db);
        Evaluator::new(best_path_pairs(n(2), n(4))).unwrap().run(&mut pairs_db).unwrap();
        Evaluator::new(best_path()).unwrap().run(&mut full_db).unwrap();
        let (p, c) = best_src(&pairs_db, 2, 4).unwrap();
        let full = full_db
            .tuples("bestPath")
            .into_iter()
            .find(|t| t.node_at(0) == Some(n(2)) && t.node_at(1) == Some(n(4)))
            .unwrap();
        assert_eq!(c, full.field(3).and_then(Value::as_cost).unwrap().value());
        assert_eq!(p.first(), Some(&n(2)));
        assert_eq!(p.last(), Some(&n(4)));
    }

    #[test]
    fn share_variant_uses_cached_paths() {
        let mut db = Database::new();
        diamond(&mut db);
        // A previous query cached the best path 3 -> 4 at node 3.
        db.declare_key("bestPathCache", vec![0, 1]);
        db.insert(Tuple::new(
            "bestPathCache",
            vec![
                Value::Node(n(3)),
                Value::Node(n(4)),
                Value::Path(dr_types::PathVector::from_nodes(vec![n(3), n(4)])),
                Value::Cost(Cost::new(1.0)),
            ],
        ));
        Evaluator::new(best_path_pairs_share(n(0), n(4), "bestPathCache"))
            .unwrap()
            .run(&mut db)
            .unwrap();
        let (path, cost) = best_src(&db, 0, 4).unwrap();
        assert_eq!(cost, 3.0);
        assert_eq!(path, vec![n(0), n(1), n(3), n(4)]);
        // BPPS1 stops exploring past node 3 (which holds a cache entry), so
        // no partial path extends beyond node 4 through the expensive side.
        assert!(db.tuples("path").iter().all(|t| t
            .field(2)
            .and_then(Value::as_path)
            .unwrap()
            .len()
            <= 4));
    }

    #[test]
    fn share_variant_without_cache_matches_plain_pairs() {
        let mut share_db = Database::new();
        let mut plain_db = Database::new();
        diamond(&mut share_db);
        diamond(&mut plain_db);
        Evaluator::new(best_path_pairs_share(n(0), n(4), "bestPathCache"))
            .unwrap()
            .run(&mut share_db)
            .unwrap();
        Evaluator::new(best_path_pairs(n(0), n(4))).unwrap().run(&mut plain_db).unwrap();
        assert_eq!(best_src(&share_db, 0, 4), best_src(&plain_db, 0, 4));
    }

    #[test]
    fn fact_builders() {
        assert_eq!(magic_source_fact(n(3)).relation(), "magicSources");
        assert_eq!(magic_source_fact(n(3)).rel(), crate::rels::magic_sources());
        assert_eq!(magic_dst_fact(n(4)).relation(), "magicDsts");
        assert_eq!(magic_dst_fact(n(4)).rel(), crate::rels::magic_dsts());
        assert_eq!(magic_source_fact(n(3)).node_at(0), Some(n(3)));
    }
}
