//! # dr-workloads
//!
//! Everything the evaluation needs around the core system: topology
//! generators (GT-ITM-style transit-stub networks for the simulation
//! experiments of §9.1; Sparse-Random / Dense-Random / Dense-UUNET overlays
//! standing in for the PlanetLab deployment of §9.2), the stochastic
//! link-RTT model and Jacobson/Karels smoothing used by the path-adaptation
//! experiments, churn schedules (fail/join every 150 s), and
//! source/destination query workload generators for Figures 7–9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod link_dynamics;
pub mod overlay;
pub mod queries;
pub mod rtt;
pub mod transit_stub;

pub use churn::ChurnSchedule;
pub use link_dynamics::{LinkJitterSchedule, LinkRttSchedule};
pub use overlay::{OverlayKind, OverlayParams};
pub use queries::{MixedWorkload, PairWorkload};
pub use rtt::{RttModel, RttSmoother};
pub use transit_stub::TransitStubParams;
