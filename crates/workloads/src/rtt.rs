//! Link-RTT dynamics and smoothing (§9.2.3).
//!
//! On PlanetLab the paper measures link RTTs every five minutes and feeds
//! the updates to the continuous query; load fluctuations make raw RTTs
//! noisy, so a second configuration smooths them with "the classic
//! Jacobson/Karels algorithm" and only reports an update when the new
//! estimate deviates from the last reported value by more than the mean
//! deviation. [`RttModel`] generates the synthetic measurement process
//! (baseline RTT per link plus load-dependent noise and occasional spikes);
//! [`RttSmoother`] implements the estimator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic RTT measurement process for one deployment.
///
/// Each link has a baseline RTT (from the overlay generator); a measurement
/// at time `t` is `baseline * load(t) + noise`, where `load(t)` follows a
/// slowly varying multiplier common to the whole deployment (PlanetLab-wide
/// load swings) and `noise` adds per-measurement jitter plus rare spikes.
#[derive(Debug, Clone)]
pub struct RttModel {
    rng: StdRng,
    /// Relative amplitude of the slow load swing (0.2 = ±20%).
    pub load_swing: f64,
    /// Period of the slow load swing, in measurement rounds.
    pub load_period: f64,
    /// Per-measurement relative jitter (standard-deviation-ish, uniform).
    pub jitter: f64,
    /// Probability that a measurement is a congestion spike.
    pub spike_probability: f64,
    /// Multiplier applied during a spike.
    pub spike_factor: f64,
    round: u64,
}

impl RttModel {
    /// A model with the defaults used by the adaptation experiments.
    pub fn new(seed: u64) -> RttModel {
        RttModel {
            rng: StdRng::seed_from_u64(seed),
            load_swing: 0.2,
            load_period: 10.0,
            jitter: 0.15,
            spike_probability: 0.05,
            spike_factor: 2.0,
            round: 0,
        }
    }

    /// Advance to the next measurement round (the paper refreshes every five
    /// minutes, spreading individual measurements across the interval).
    pub fn next_round(&mut self) {
        self.round += 1;
    }

    /// The current round index.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Draw a measurement for a link with the given baseline RTT (ms).
    pub fn measure(&mut self, baseline_ms: f64) -> f64 {
        let phase = (self.round as f64 / self.load_period) * std::f64::consts::TAU;
        let load = 1.0 + self.load_swing * phase.sin();
        let jitter = if self.jitter > 0.0 {
            1.0 + self.rng.gen_range(-self.jitter..self.jitter)
        } else {
            1.0
        };
        let spike = if self.spike_probability > 0.0 && self.rng.gen_bool(self.spike_probability) {
            self.spike_factor
        } else {
            1.0
        };
        (baseline_ms * load * jitter * spike).max(1.0)
    }
}

/// Jacobson/Karels RTT estimator with deviation-gated reporting.
///
/// `estimate ← (1-α)·estimate + α·sample`, `deviation ← (1-β)·deviation +
/// β·|sample - estimate|`; an update is *reported* (i.e. pushed to the query
/// processor) only when the new estimate differs from the last reported
/// value by more than the current mean deviation.
#[derive(Debug, Clone)]
pub struct RttSmoother {
    alpha: f64,
    beta: f64,
    estimate: Option<f64>,
    deviation: f64,
    last_reported: Option<f64>,
}

impl Default for RttSmoother {
    fn default() -> Self {
        RttSmoother::new(0.125, 0.25)
    }
}

impl RttSmoother {
    /// Create a smoother with the given gains (classic values: α = 1/8,
    /// β = 1/4).
    pub fn new(alpha: f64, beta: f64) -> RttSmoother {
        RttSmoother { alpha, beta, estimate: None, deviation: 0.0, last_reported: None }
    }

    /// The current smoothed estimate, if any sample has been observed.
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// The current mean deviation.
    pub fn deviation(&self) -> f64 {
        self.deviation
    }

    /// Feed a sample; returns `Some(estimate)` when the change should be
    /// reported to the query processor, `None` when it is suppressed.
    pub fn observe(&mut self, sample_ms: f64) -> Option<f64> {
        match self.estimate {
            None => {
                self.estimate = Some(sample_ms);
                self.deviation = sample_ms / 2.0;
                self.last_reported = Some(sample_ms);
                Some(sample_ms)
            }
            Some(est) => {
                let err = sample_ms - est;
                let new_est = est + self.alpha * err;
                self.deviation = (1.0 - self.beta) * self.deviation + self.beta * err.abs();
                self.estimate = Some(new_est);
                let should_report = match self.last_reported {
                    None => true,
                    Some(reported) => (new_est - reported).abs() > self.deviation,
                };
                if should_report {
                    self.last_reported = Some(new_est);
                    Some(new_est)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_track_baseline() {
        let mut model = RttModel::new(1);
        let samples: Vec<f64> = (0..200).map(|_| model.measure(100.0)).collect();
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((70.0..140.0).contains(&avg), "average {avg}");
        assert!(samples.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn load_swing_moves_the_mean_over_rounds() {
        let mut model = RttModel::new(2);
        model.jitter = 0.0;
        model.spike_probability = 0.0;
        let mut highs = Vec::new();
        for _ in 0..20 {
            highs.push(model.measure(100.0));
            model.next_round();
        }
        let min = highs.iter().cloned().fold(f64::MAX, f64::min);
        let max = highs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 10.0, "load swing too small: {min}..{max}");
        assert_eq!(model.round(), 20);
    }

    #[test]
    fn spikes_are_rare_but_large() {
        let mut model = RttModel::new(3);
        model.jitter = 0.0;
        model.load_swing = 0.0;
        model.spike_probability = 0.5;
        let spikes = (0..100).filter(|_| model.measure(100.0) > 150.0).count();
        assert!(spikes > 20, "expected many spikes, got {spikes}");
        model.spike_probability = 0.0;
        let spikes = (0..100).filter(|_| model.measure(100.0) > 150.0).count();
        assert_eq!(spikes, 0);
    }

    #[test]
    fn smoother_reports_first_sample_and_converges() {
        let mut s = RttSmoother::default();
        assert_eq!(s.observe(100.0), Some(100.0));
        assert_eq!(s.estimate(), Some(100.0));
        // Small fluctuations around 100 are suppressed.
        let mut reported = 0;
        for sample in [101.0, 99.0, 102.0, 98.0, 100.5] {
            if s.observe(sample).is_some() {
                reported += 1;
            }
        }
        assert_eq!(reported, 0, "small jitter must be suppressed");
        // A sustained change eventually gets reported.
        let mut reported_after_shift = false;
        for _ in 0..50 {
            if s.observe(200.0).is_some() {
                reported_after_shift = true;
                break;
            }
        }
        assert!(reported_after_shift);
        assert!(s.estimate().unwrap() > 110.0);
        assert!(s.deviation() > 0.0);
    }

    #[test]
    fn smoothing_reduces_reported_updates() {
        // Feed the same noisy series to a smoother and count how many
        // updates each policy reports: raw reporting fires every time, the
        // smoother dramatically less often.
        let mut model = RttModel::new(4);
        let samples: Vec<f64> = (0..200)
            .map(|i| {
                if i % 10 == 0 {
                    model.next_round();
                }
                model.measure(100.0)
            })
            .collect();
        let raw_updates = samples.len();
        let mut smoother = RttSmoother::default();
        let smoothed_updates = samples.iter().filter(|&&s| smoother.observe(s).is_some()).count();
        assert!(
            smoothed_updates * 2 < raw_updates,
            "smoothing should at least halve updates: {smoothed_updates} vs {raw_updates}"
        );
        assert!(smoothed_updates > 0);
    }
}
