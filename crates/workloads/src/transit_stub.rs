//! GT-ITM-style transit-stub topologies (§9.1).
//!
//! "The transit-stub topology consists of eight nodes per stub, three stubs
//! per transit node, and four nodes per transit domain. We increase the
//! number of nodes in the network by increasing the number of domains. The
//! latency between transit nodes is set to 50 ms, the latency between a
//! transit and a stub node is 10 ms, and the latency between any two nodes
//! in the same stub is 2 ms."

use dr_netsim::{LinkParams, Topology};
use dr_types::{Cost, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the transit-stub generator; defaults follow the paper.
#[derive(Debug, Clone)]
pub struct TransitStubParams {
    /// Number of transit domains.
    pub domains: usize,
    /// Transit nodes per domain (paper: 4).
    pub transit_nodes_per_domain: usize,
    /// Stubs attached to each transit node (paper: 3).
    pub stubs_per_transit_node: usize,
    /// Nodes per stub (paper: 8).
    pub nodes_per_stub: usize,
    /// Latency between transit nodes in ms (paper: 50).
    pub transit_transit_ms: f64,
    /// Latency between a transit node and a stub node in ms (paper: 10).
    pub transit_stub_ms: f64,
    /// Latency between two nodes of the same stub in ms (paper: 2).
    pub stub_stub_ms: f64,
    /// RNG seed (topology wiring inside stubs and between domains).
    pub seed: u64,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            domains: 1,
            transit_nodes_per_domain: 4,
            stubs_per_transit_node: 3,
            nodes_per_stub: 8,
            transit_transit_ms: 50.0,
            transit_stub_ms: 10.0,
            stub_stub_ms: 2.0,
            seed: 42,
        }
    }
}

impl TransitStubParams {
    /// Parameters sized to approximately `target_nodes` nodes (the paper
    /// scales 100–1000 nodes by increasing the number of domains).
    pub fn sized(target_nodes: usize, seed: u64) -> TransitStubParams {
        let defaults = TransitStubParams::default();
        let per_domain = defaults.nodes_per_domain();
        let domains = target_nodes.div_ceil(per_domain);
        TransitStubParams { domains: domains.max(1), seed, ..defaults }
    }

    /// Nodes contributed by each domain.
    pub fn nodes_per_domain(&self) -> usize {
        self.transit_nodes_per_domain * (1 + self.stubs_per_transit_node * self.nodes_per_stub)
    }

    /// Total node count of the generated topology.
    pub fn total_nodes(&self) -> usize {
        self.domains * self.nodes_per_domain()
    }

    /// Generate the topology. Link costs equal their latency in
    /// milliseconds (the shortest-latency metric used throughout §9.1).
    pub fn generate(&self) -> Topology {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let total = self.total_nodes();
        let mut topo = Topology::new(total);
        let link = |ms: f64| LinkParams::with_latency_ms(ms).with_cost(Cost::new(ms));

        let mut next = 0u32;
        let alloc = |count: usize, next: &mut u32| -> Vec<NodeId> {
            let ids: Vec<NodeId> = (0..count).map(|i| NodeId::new(*next + i as u32)).collect();
            *next += count as u32;
            ids
        };

        let mut domain_transits: Vec<Vec<NodeId>> = Vec::new();
        for _ in 0..self.domains {
            // Transit nodes of this domain form a ring plus random chords —
            // a small connected transit backbone.
            let transits = alloc(self.transit_nodes_per_domain, &mut next);
            for i in 0..transits.len() {
                let a = transits[i];
                let b = transits[(i + 1) % transits.len()];
                if a != b && !topo.has_link(a, b) {
                    topo.add_bidirectional(a, b, link(self.transit_transit_ms));
                }
            }
            if transits.len() > 3 {
                // one random chord for redundancy
                let a = transits[rng.gen_range(0..transits.len())];
                let b = transits[rng.gen_range(0..transits.len())];
                if a != b && !topo.has_link(a, b) {
                    topo.add_bidirectional(a, b, link(self.transit_transit_ms));
                }
            }

            // Stubs hanging off each transit node.
            for &transit in &transits {
                for _ in 0..self.stubs_per_transit_node {
                    let stub = alloc(self.nodes_per_stub, &mut next);
                    // Stub-internal topology: a ring plus a couple of random
                    // chords keeps the stub connected with average degree ≈3.
                    for i in 0..stub.len() {
                        let a = stub[i];
                        let b = stub[(i + 1) % stub.len()];
                        if a != b && !topo.has_link(a, b) {
                            topo.add_bidirectional(a, b, link(self.stub_stub_ms));
                        }
                    }
                    for _ in 0..2 {
                        let a = *stub.choose(&mut rng).expect("stub not empty");
                        let b = *stub.choose(&mut rng).expect("stub not empty");
                        if a != b && !topo.has_link(a, b) {
                            topo.add_bidirectional(a, b, link(self.stub_stub_ms));
                        }
                    }
                    // The stub's gateway attaches to its transit node.
                    let gateway = stub[0];
                    topo.add_bidirectional(gateway, transit, link(self.transit_stub_ms));
                }
            }
            domain_transits.push(transits);
        }

        // Inter-domain links: connect consecutive domains' transit backbones
        // (and close the loop) so the whole network is connected.
        if domain_transits.len() > 1 {
            for i in 0..domain_transits.len() {
                let a_domain = &domain_transits[i];
                let b_domain = &domain_transits[(i + 1) % domain_transits.len()];
                let a = *a_domain.choose(&mut rng).expect("non-empty domain");
                let b = *b_domain.choose(&mut rng).expect("non-empty domain");
                if a != b && !topo.has_link(a, b) {
                    topo.add_bidirectional(a, b, link(self.transit_transit_ms));
                }
            }
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_match_the_paper() {
        let p = TransitStubParams::default();
        assert_eq!(p.transit_nodes_per_domain, 4);
        assert_eq!(p.stubs_per_transit_node, 3);
        assert_eq!(p.nodes_per_stub, 8);
        assert_eq!(p.transit_transit_ms, 50.0);
        assert_eq!(p.transit_stub_ms, 10.0);
        assert_eq!(p.stub_stub_ms, 2.0);
        // 4 * (1 + 3*8) = 100 nodes per domain
        assert_eq!(p.nodes_per_domain(), 100);
    }

    #[test]
    fn sized_scales_by_domains() {
        assert_eq!(TransitStubParams::sized(100, 1).total_nodes(), 100);
        assert_eq!(TransitStubParams::sized(250, 1).total_nodes(), 300);
        assert_eq!(TransitStubParams::sized(1000, 1).total_nodes(), 1000);
        assert_eq!(TransitStubParams::sized(1, 1).total_nodes(), 100);
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in [1, 2, 3] {
            let topo = TransitStubParams::sized(200, seed).generate();
            assert_eq!(topo.num_nodes(), 200);
            assert!(topo.is_strongly_connected(), "seed {seed} produced a disconnected network");
        }
    }

    #[test]
    fn latencies_use_the_three_tiers() {
        let topo = TransitStubParams::sized(100, 7).generate();
        let mut seen = std::collections::BTreeSet::new();
        for (_, _, p) in topo.all_links() {
            seen.insert(p.latency.as_micros());
        }
        assert!(seen.contains(&2_000));
        assert!(seen.contains(&10_000));
        assert!(seen.contains(&50_000));
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn diameter_grows_with_domain_count() {
        let small = TransitStubParams::sized(100, 5).generate();
        let large = TransitStubParams::sized(400, 5).generate();
        assert!(large.diameter_latency_ms() >= small.diameter_latency_ms());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = TransitStubParams::sized(200, 9).generate();
        let b = TransitStubParams::sized(200, 9).generate();
        assert_eq!(a.num_links(), b.num_links());
        let c = TransitStubParams::sized(200, 10).generate();
        // different seed may differ in chord placement (not guaranteed, but
        // node/link counts at least stay consistent)
        assert_eq!(a.num_nodes(), c.num_nodes());
    }
}
