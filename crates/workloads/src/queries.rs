//! Source/destination query workloads (Figures 7–9).
//!
//! The paper issues a stream of Best-Path-Pairs queries, "periodically every
//! 15 sec", each computing the shortest path between a random pair of
//! nodes. Figure 8 additionally restricts the destinations to a fraction of
//! the nodes (20%, 1%) to show how destination locality increases cache
//! hits; Figure 9 mixes queries over four different link metrics (65%
//! latency, 5/10/20% others) and, in its second variant, switches to a
//! single metric after 150 queries.

use dr_types::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A generator of random (source, destination) query pairs.
#[derive(Debug, Clone)]
pub struct PairWorkload {
    rng: StdRng,
    nodes: usize,
    /// Destinations are drawn from this restricted pool (all nodes when the
    /// fraction is 1.0) — the paper's "X% Dst" restriction.
    destination_pool: Vec<NodeId>,
}

impl PairWorkload {
    /// A workload over `nodes` nodes with unrestricted destinations.
    pub fn new(nodes: usize, seed: u64) -> PairWorkload {
        PairWorkload::with_destination_fraction(nodes, 1.0, seed)
    }

    /// A workload whose destinations are limited to `fraction` of the nodes.
    pub fn with_destination_fraction(nodes: usize, fraction: f64, seed: u64) -> PairWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<NodeId> = (0..nodes as u32).map(NodeId::new).collect();
        all.shuffle(&mut rng);
        let keep = ((nodes as f64 * fraction).round() as usize).clamp(1, nodes);
        let destination_pool = all.into_iter().take(keep).collect();
        PairWorkload { rng, nodes, destination_pool }
    }

    /// Size of the destination pool.
    pub fn destination_pool_size(&self) -> usize {
        self.destination_pool.len()
    }

    /// Draw the next (source, destination) pair (source ≠ destination).
    pub fn next_pair(&mut self) -> (NodeId, NodeId) {
        loop {
            let src = NodeId::new(self.rng.gen_range(0..self.nodes as u32));
            let dst = *self
                .destination_pool
                .choose(&mut self.rng)
                .expect("destination pool is never empty");
            if src != dst {
                return (src, dst);
            }
        }
    }
}

/// The link metric a query in the mixed workload optimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryMetric {
    /// Shortest latency (65% of queries in Fig. 9).
    Latency,
    /// A second additive metric (e.g. loss-derived cost) — 20%.
    MetricA,
    /// A third metric — 10%.
    MetricB,
    /// A fourth metric — 5%.
    MetricC,
}

impl QueryMetric {
    /// A stable name used to namespace the per-metric result cache.
    pub fn cache_relation(self) -> &'static str {
        match self {
            QueryMetric::Latency => "bestPathCache",
            QueryMetric::MetricA => "bestPathCache_a",
            QueryMetric::MetricB => "bestPathCache_b",
            QueryMetric::MetricC => "bestPathCache_c",
        }
    }
}

/// The mixed-metric workload of Figure 9.
#[derive(Debug, Clone)]
pub struct MixedWorkload {
    pairs: PairWorkload,
    rng: StdRng,
    issued: usize,
    /// After this many queries, every further query uses the latency metric
    /// (the paper's Pair-Share-Mix2 switch at 150 queries). `None` keeps the
    /// mix forever (Pair-Share-Mix).
    pub switch_to_latency_after: Option<usize>,
}

impl MixedWorkload {
    /// Build the Fig. 9 workload.
    pub fn new(nodes: usize, switch_to_latency_after: Option<usize>, seed: u64) -> MixedWorkload {
        MixedWorkload {
            pairs: PairWorkload::new(nodes, seed),
            rng: StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7)),
            issued: 0,
            switch_to_latency_after,
        }
    }

    /// Draw the next query: source, destination, and metric.
    pub fn next_query(&mut self) -> (NodeId, NodeId, QueryMetric) {
        let (src, dst) = self.pairs.next_pair();
        let metric = if self.switch_to_latency_after.map(|n| self.issued >= n).unwrap_or(false) {
            QueryMetric::Latency
        } else {
            // 65% latency, 20% A, 10% B, 5% C — the paper's mixture.
            let roll: f64 = self.rng.gen();
            if roll < 0.65 {
                QueryMetric::Latency
            } else if roll < 0.85 {
                QueryMetric::MetricA
            } else if roll < 0.95 {
                QueryMetric::MetricB
            } else {
                QueryMetric::MetricC
            }
        };
        self.issued += 1;
        (src, dst, metric)
    }

    /// Number of queries drawn so far.
    pub fn issued(&self) -> usize {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn pairs_never_have_equal_endpoints() {
        let mut w = PairWorkload::new(20, 1);
        for _ in 0..200 {
            let (s, d) = w.next_pair();
            assert_ne!(s, d);
            assert!(s.index() < 20 && d.index() < 20);
        }
    }

    #[test]
    fn destination_fraction_limits_the_pool() {
        let mut w = PairWorkload::with_destination_fraction(100, 0.2, 2);
        assert_eq!(w.destination_pool_size(), 20);
        let destinations: BTreeSet<NodeId> = (0..500).map(|_| w.next_pair().1).collect();
        assert!(destinations.len() <= 20);

        let mut tight = PairWorkload::with_destination_fraction(100, 0.01, 3);
        assert_eq!(tight.destination_pool_size(), 1);
        let only: BTreeSet<NodeId> = (0..50).map(|_| tight.next_pair().1).collect();
        assert_eq!(only.len(), 1);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let mut a = PairWorkload::new(50, 9);
        let mut b = PairWorkload::new(50, 9);
        for _ in 0..20 {
            assert_eq!(a.next_pair(), b.next_pair());
        }
    }

    #[test]
    fn mixed_workload_roughly_matches_paper_fractions() {
        let mut w = MixedWorkload::new(100, None, 4);
        let mut latency = 0;
        let mut other = 0;
        for _ in 0..1000 {
            match w.next_query().2 {
                QueryMetric::Latency => latency += 1,
                _ => other += 1,
            }
        }
        let frac = latency as f64 / 1000.0;
        assert!((0.55..0.75).contains(&frac), "latency fraction {frac}");
        assert!(other > 0);
        assert_eq!(w.issued(), 1000);
    }

    #[test]
    fn mix2_switches_to_latency_only() {
        let mut w = MixedWorkload::new(100, Some(150), 5);
        for _ in 0..150 {
            w.next_query();
        }
        for _ in 0..100 {
            assert_eq!(w.next_query().2, QueryMetric::Latency);
        }
    }

    #[test]
    fn metric_cache_relations_are_distinct() {
        let names: BTreeSet<&str> = [
            QueryMetric::Latency,
            QueryMetric::MetricA,
            QueryMetric::MetricB,
            QueryMetric::MetricC,
        ]
        .iter()
        .map(|m| m.cache_relation())
        .collect();
        assert_eq!(names.len(), 4);
    }
}
