//! Churn schedules (§9.2.4).
//!
//! "We induce churn by alternately injecting fail and join events every 150
//! sec. At each fail event, a random set of nodes (chosen from either 5%,
//! 10% or 20% of the nodes) experience fail-stop failures. This is followed
//! by a join event where the previously failed nodes rejoin the network."

use dr_netsim::timeline::{EventSource, TimelineEvent};
use dr_netsim::{SimDuration, SimTime, Topology};
use dr_types::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One churn event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The listed nodes fail-stop at the given time.
    Fail(SimTime, Vec<NodeId>),
    /// The listed nodes rejoin at the given time.
    Join(SimTime, Vec<NodeId>),
}

impl ChurnEvent {
    /// When the event happens.
    pub fn time(&self) -> SimTime {
        match self {
            ChurnEvent::Fail(t, _) | ChurnEvent::Join(t, _) => *t,
        }
    }

    /// The nodes affected.
    pub fn nodes(&self) -> &[NodeId] {
        match self {
            ChurnEvent::Fail(_, n) | ChurnEvent::Join(_, n) => n,
        }
    }
}

/// A generated alternating fail/join schedule.
#[derive(Debug, Clone)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Build the paper's schedule: starting at `start`, every `interval`
    /// (150 s in the paper) alternately fail a fresh random `fraction` of
    /// the `num_nodes` nodes and rejoin them, for `cycles` fail+join cycles.
    ///
    /// The issuing node (node 0 by convention) is never failed so the query
    /// always has a live issuer; this matches the paper's setup where the
    /// measurement vantage points stay up.
    pub fn alternating(
        num_nodes: usize,
        fraction: f64,
        start: SimTime,
        interval: SimDuration,
        cycles: usize,
        seed: u64,
    ) -> ChurnSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let candidates: Vec<NodeId> = (1..num_nodes as u32).map(NodeId::new).collect();
        let per_event =
            ((num_nodes as f64 * fraction).round() as usize).max(1).min(candidates.len());
        let mut events = Vec::new();
        let mut t = start;
        for _ in 0..cycles {
            let mut pool = candidates.clone();
            pool.shuffle(&mut rng);
            let victims: Vec<NodeId> = pool.into_iter().take(per_event).collect();
            events.push(ChurnEvent::Fail(t, victims.clone()));
            t += interval;
            events.push(ChurnEvent::Join(t, victims));
            t += interval;
        }
        ChurnSchedule { events }
    }

    /// The events in chronological order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Total number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last event.
    pub fn end_time(&self) -> SimTime {
        self.events.last().map(ChurnEvent::time).unwrap_or(SimTime::ZERO)
    }
}

/// A churn schedule is a timeline event source: each `Fail`/`Join` event
/// expands into one per-victim [`TimelineEvent`], in schedule order (so a
/// scenario's stable time sort preserves the victim order the seed chose).
impl<M: Clone> EventSource<M> for ChurnSchedule {
    fn events_for(&self, _topology: &Topology) -> Vec<TimelineEvent<M>> {
        let mut out = Vec::new();
        for event in &self.events {
            match event {
                ChurnEvent::Fail(t, nodes) => {
                    out.extend(nodes.iter().map(|&n| TimelineEvent::NodeFail { at: *t, node: n }));
                }
                ChurnEvent::Join(t, nodes) => {
                    out.extend(nodes.iter().map(|&n| TimelineEvent::NodeJoin { at: *t, node: n }));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_fail_and_join_with_matching_victims() {
        let s = ChurnSchedule::alternating(
            72,
            0.1,
            SimTime::from_secs(100),
            SimDuration::from_secs(150),
            3,
            1,
        );
        assert_eq!(s.len(), 6);
        assert!(!s.is_empty());
        for pair in s.events().chunks(2) {
            match (&pair[0], &pair[1]) {
                (ChurnEvent::Fail(tf, failed), ChurnEvent::Join(tj, joined)) => {
                    assert_eq!(failed, joined, "join must restore the failed set");
                    assert_eq!(*tj - *tf, SimDuration::from_secs(150));
                    assert_eq!(failed.len(), 7); // 10% of 72, rounded
                }
                other => panic!("unexpected pair {other:?}"),
            }
        }
        assert_eq!(s.end_time(), SimTime::from_secs(100 + 150 * 5));
    }

    #[test]
    fn fraction_controls_victim_count() {
        for (frac, expect) in [(0.05, 4), (0.1, 7), (0.2, 14)] {
            let s = ChurnSchedule::alternating(
                72,
                frac,
                SimTime::ZERO,
                SimDuration::from_secs(150),
                1,
                2,
            );
            assert_eq!(s.events()[0].nodes().len(), expect, "fraction {frac}");
        }
    }

    #[test]
    fn node_zero_is_never_failed() {
        let s =
            ChurnSchedule::alternating(10, 0.9, SimTime::ZERO, SimDuration::from_secs(150), 5, 3);
        for e in s.events() {
            assert!(!e.nodes().contains(&NodeId::new(0)));
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a =
            ChurnSchedule::alternating(50, 0.2, SimTime::ZERO, SimDuration::from_secs(150), 2, 7);
        let b =
            ChurnSchedule::alternating(50, 0.2, SimTime::ZERO, SimDuration::from_secs(150), 2, 7);
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn timeline_events_expand_per_victim_in_schedule_order() {
        let s = ChurnSchedule::alternating(
            10,
            0.3,
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
            2,
            4,
        );
        let topo = Topology::new(10);
        let events: Vec<TimelineEvent<()>> = s.events_for(&topo);
        let per_event = s.events()[0].nodes().len();
        // 2 cycles x (fail + join), one event per victim.
        assert_eq!(events.len(), 4 * per_event);
        // The first batch are fails of the first victim set, in order.
        for (i, e) in events.iter().take(per_event).enumerate() {
            match e {
                TimelineEvent::NodeFail { at, node } => {
                    assert_eq!(*at, SimTime::from_secs(5));
                    assert_eq!(*node, s.events()[0].nodes()[i]);
                }
                other => panic!("expected NodeFail, got {other:?}"),
            }
        }
        // Fails and joins alternate and every join restores its fail set.
        let fails: Vec<NodeId> = events
            .iter()
            .filter_map(|e| match e {
                TimelineEvent::NodeFail { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        let joins: Vec<NodeId> = events
            .iter()
            .filter_map(|e| match e {
                TimelineEvent::NodeJoin { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(fails, joins);
    }

    #[test]
    fn empty_schedule_edge_cases() {
        let s = ChurnSchedule::alternating(5, 0.2, SimTime::ZERO, SimDuration::from_secs(1), 0, 1);
        assert!(s.is_empty());
        assert_eq!(s.end_time(), SimTime::ZERO);
    }
}
