//! Link-metric dynamics as timeline event sources.
//!
//! The path-adaptation experiments (§9.2.3) used to be an imperative loop:
//! draw a measurement per link per round from [`RttModel`], optionally pass
//! it through an [`RttSmoother`], and hand-schedule a link-metric change —
//! repeated verbatim in every figure binary that needed it. Both dynamics
//! are now *event sources*: a [`LinkRttSchedule`] (measurement rounds with
//! optional Jacobson/Karels smoothing) or a [`LinkJitterSchedule`] (seeded
//! Gaussian jitter around each link's baseline) expands into plain
//! [`TimelineEvent::LinkChange`]s over a topology, which a
//! `dr_core::scenario::ScenarioBuilder` schedules and probes.
//!
//! Both sources are pure functions of (topology, seed), so scenario runs
//! that include them stay deterministic and replayable.

use crate::rtt::{RttModel, RttSmoother};
use dr_netsim::timeline::{EventSource, TimelineEvent};
use dr_netsim::{LinkParams, SimDuration, SimTime, Topology};
use dr_types::{Cost, NodeId};
use rand::distributions::{Distribution, Normal};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Periodic link-RTT measurement rounds (§9.2.3), as an event source.
///
/// Every `round_interval`, each directed link of the topology is measured
/// once through an [`RttModel`] seeded with `seed`; measurements are spread
/// across the round in link order (the i-th of L links lands `i/L` of the
/// way in). With `smoothed` set, each link's measurements run through a
/// Jacobson/Karels [`RttSmoother`] and only deviation-exceeding estimates
/// become link changes — the configuration Figure 13 compares against the
/// raw reporting of Figure 12.
#[derive(Debug, Clone)]
pub struct LinkRttSchedule {
    /// When the first measurement round starts.
    pub start: SimTime,
    /// Length of one measurement round (5 minutes in the paper).
    pub round_interval: SimDuration,
    /// Number of rounds.
    pub rounds: usize,
    /// Apply Jacobson/Karels smoothing with deviation-gated reporting.
    pub smoothed: bool,
    /// Seed of the measurement process.
    pub seed: u64,
}

impl LinkRttSchedule {
    /// A schedule with the given shape.
    pub fn new(
        start: SimTime,
        round_interval: SimDuration,
        rounds: usize,
        smoothed: bool,
        seed: u64,
    ) -> LinkRttSchedule {
        LinkRttSchedule { start, round_interval, rounds, smoothed, seed }
    }
}

impl<M: Clone> EventSource<M> for LinkRttSchedule {
    fn events_for(&self, topology: &Topology) -> Vec<TimelineEvent<M>> {
        let baselines: Vec<(NodeId, NodeId, f64)> =
            topology.all_links().map(|(a, b, p)| (a, b, p.cost.value())).collect();
        let mut model = RttModel::new(self.seed);
        let mut smoothers: BTreeMap<(NodeId, NodeId), RttSmoother> = BTreeMap::new();
        let mut out = Vec::new();
        let mut now = self.start;
        for _ in 0..self.rounds {
            model.next_round();
            for (i, (a, b, baseline)) in baselines.iter().enumerate() {
                let sample = model.measure(*baseline);
                let reported = if self.smoothed {
                    smoothers.entry((*a, *b)).or_default().observe(sample)
                } else {
                    Some(sample)
                };
                if let Some(rtt) = reported {
                    let at = now
                        + SimDuration::from_millis_f64(
                            self.round_interval.as_millis_f64()
                                * (i as f64 / baselines.len() as f64),
                        );
                    out.push(TimelineEvent::LinkChange {
                        at,
                        from: *a,
                        to: *b,
                        params: LinkParams::with_latency_ms(rtt / 2.0).with_cost(Cost::new(rtt)),
                    });
                }
            }
            now += self.round_interval;
        }
        out
    }
}

/// Seeded Gaussian jitter around each link's baseline cost.
///
/// A lighter-weight alternative to the full measurement model: every
/// `interval`, each directed link's cost is re-drawn from
/// `Normal(baseline, relative_sigma * baseline)` (clamped to ≥ 1 ms), with
/// draws spread across the interval in link order. Useful for stressing
/// route stability without the RTT model's load swings and spikes.
#[derive(Debug, Clone)]
pub struct LinkJitterSchedule {
    /// When the first jitter round starts.
    pub start: SimTime,
    /// Time between consecutive re-draws of the same link.
    pub interval: SimDuration,
    /// Number of jitter rounds.
    pub rounds: usize,
    /// Standard deviation as a fraction of each link's baseline cost.
    pub relative_sigma: f64,
    /// Seed of the jitter process.
    pub seed: u64,
}

impl LinkJitterSchedule {
    /// A schedule with the given shape.
    pub fn new(
        start: SimTime,
        interval: SimDuration,
        rounds: usize,
        relative_sigma: f64,
        seed: u64,
    ) -> LinkJitterSchedule {
        assert!(
            relative_sigma.is_finite() && relative_sigma >= 0.0,
            "relative_sigma must be finite and non-negative, got {relative_sigma}"
        );
        LinkJitterSchedule { start, interval, rounds, relative_sigma, seed }
    }
}

impl<M: Clone> EventSource<M> for LinkJitterSchedule {
    fn events_for(&self, topology: &Topology) -> Vec<TimelineEvent<M>> {
        let baselines: Vec<(NodeId, NodeId, f64)> =
            topology.all_links().map(|(a, b, p)| (a, b, p.cost.value())).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut now = self.start;
        for _ in 0..self.rounds {
            for (i, (a, b, baseline)) in baselines.iter().enumerate() {
                let sigma = self.relative_sigma * baseline;
                let rtt = Normal::new(*baseline, sigma).sample(&mut rng).max(1.0);
                let at = now
                    + SimDuration::from_millis_f64(
                        self.interval.as_millis_f64() * (i as f64 / baselines.len() as f64),
                    );
                out.push(TimelineEvent::LinkChange {
                    at,
                    from: *a,
                    to: *b,
                    params: LinkParams::with_latency_ms(rtt / 2.0).with_cost(Cost::new(rtt)),
                });
            }
            now += self.interval;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn triangle() -> Topology {
        let mut t = Topology::new(3);
        t.add_bidirectional(n(0), n(1), LinkParams::with_latency_ms(50.0));
        t.add_bidirectional(n(1), n(2), LinkParams::with_latency_ms(100.0));
        t.add_bidirectional(n(0), n(2), LinkParams::with_latency_ms(150.0));
        t
    }

    #[test]
    fn raw_rtt_schedule_measures_every_link_every_round() {
        let topo = triangle();
        let s =
            LinkRttSchedule::new(SimTime::from_secs(100), SimDuration::from_secs(30), 4, false, 7);
        let events: Vec<TimelineEvent<()>> = s.events_for(&topo);
        assert_eq!(events.len(), 4 * 6); // 4 rounds x 6 directed links
        for e in &events {
            match e {
                TimelineEvent::LinkChange { at, params, .. } => {
                    assert!(*at >= SimTime::from_secs(100));
                    assert!(*at < SimTime::from_secs(100 + 4 * 30));
                    assert!(params.cost.value() >= 1.0);
                }
                other => panic!("expected LinkChange, got {other:?}"),
            }
        }
        // Event times never decrease (scenario sorts stably; sources
        // promise chronological order).
        assert!(events.windows(2).all(|w| w[0].time() <= w[1].time()));
    }

    #[test]
    fn smoothing_suppresses_reports() {
        let topo = triangle();
        let raw: Vec<TimelineEvent<()>> =
            LinkRttSchedule::new(SimTime::ZERO, SimDuration::from_secs(30), 10, false, 7)
                .events_for(&topo);
        let smoothed: Vec<TimelineEvent<()>> =
            LinkRttSchedule::new(SimTime::ZERO, SimDuration::from_secs(30), 10, true, 7)
                .events_for(&topo);
        assert!(
            smoothed.len() < raw.len(),
            "smoothing should suppress updates: {} vs {}",
            smoothed.len(),
            raw.len()
        );
        assert!(!smoothed.is_empty(), "the first estimate per link is always reported");
    }

    #[test]
    fn schedules_are_deterministic_for_a_seed() {
        let topo = triangle();
        let a: Vec<TimelineEvent<()>> =
            LinkRttSchedule::new(SimTime::ZERO, SimDuration::from_secs(10), 3, true, 42)
                .events_for(&topo);
        let b: Vec<TimelineEvent<()>> =
            LinkRttSchedule::new(SimTime::ZERO, SimDuration::from_secs(10), 3, true, 42)
                .events_for(&topo);
        assert_eq!(a, b);
        let j1: Vec<TimelineEvent<()>> =
            LinkJitterSchedule::new(SimTime::ZERO, SimDuration::from_secs(10), 3, 0.1, 42)
                .events_for(&topo);
        let j2: Vec<TimelineEvent<()>> =
            LinkJitterSchedule::new(SimTime::ZERO, SimDuration::from_secs(10), 3, 0.1, 42)
                .events_for(&topo);
        assert_eq!(j1, j2);
    }

    #[test]
    fn jitter_stays_near_the_baseline() {
        let topo = triangle();
        let s = LinkJitterSchedule::new(SimTime::ZERO, SimDuration::from_secs(10), 50, 0.05, 3);
        let events: Vec<TimelineEvent<()>> = s.events_for(&topo);
        assert_eq!(events.len(), 50 * 6);
        // 5% sigma keeps essentially every draw within ±25% of baseline.
        let mut checked = 0;
        for e in &events {
            if let TimelineEvent::LinkChange { from, to, params, .. } = e {
                let baseline = topo.link(*from, *to).unwrap().cost.value();
                assert!(
                    (params.cost.value() - baseline).abs() < baseline * 0.25,
                    "{from}->{to}: {} vs baseline {baseline}",
                    params.cost
                );
                checked += 1;
            }
        }
        assert_eq!(checked, events.len());
        // Zero sigma reproduces the baseline exactly.
        let flat: Vec<TimelineEvent<()>> =
            LinkJitterSchedule::new(SimTime::ZERO, SimDuration::from_secs(10), 1, 0.0, 3)
                .events_for(&topo);
        for e in &flat {
            if let TimelineEvent::LinkChange { from, to, params, .. } = e {
                assert_eq!(params.cost.value(), topo.link(*from, *to).unwrap().cost.value());
            }
        }
    }
}
