//! PlanetLab-substitute overlays (§9.2.1).
//!
//! The paper deploys on 72 PlanetLab nodes arranged into three overlay
//! topologies: **Sparse-Random** (each node picks 4 random neighbors),
//! **Dense-Random** (8 random neighbors) and **Dense-UUNET** (average degree
//! 8, links biased toward same-site and same-region pairs to approximate the
//! UUNET backbone). We cannot run on PlanetLab, so these generators emulate
//! the same structures over the simulator: nodes are spread over five coarse
//! regions (North-America west/central/east, Europe, East Asia), link RTTs
//! are drawn from region-dependent ranges calibrated to the paper's Table 1
//! and 2 (average link RTT ≈ 88–106 ms for the random overlays, ≈ 51 ms for
//! Dense-UUNET), and the RTT becomes both the link latency (RTT/2 one way)
//! and the routing cost.

use dr_netsim::{LinkParams, Topology};
use dr_types::{Cost, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The five coarse regions of §9.2.1.
pub const NUM_REGIONS: usize = 5;

/// Which overlay construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayKind {
    /// Each node selects 4 random neighbors.
    SparseRandom,
    /// Each node selects 8 random neighbors.
    DenseRandom,
    /// Average degree 8, links biased to nearby nodes (UUNET-like).
    DenseUunet,
}

impl OverlayKind {
    /// The per-node neighbor budget.
    pub fn degree(self) -> usize {
        match self {
            OverlayKind::SparseRandom => 4,
            OverlayKind::DenseRandom => 8,
            OverlayKind::DenseUunet => 8,
        }
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            OverlayKind::SparseRandom => "Sparse-Random",
            OverlayKind::DenseRandom => "Dense-Random",
            OverlayKind::DenseUunet => "Dense-UUNET",
        }
    }
}

/// Overlay generation parameters.
#[derive(Debug, Clone)]
pub struct OverlayParams {
    /// Which construction to use.
    pub kind: OverlayKind,
    /// Number of overlay nodes (the paper uses 72 across 30–35 sites).
    pub nodes: usize,
    /// Baseline load factor ≥ 1.0: scales all RTTs, modelling PlanetLab load
    /// (the paper's second measurement period saw ≈ 20% higher RTTs).
    pub load_factor: f64,
    /// RNG seed.
    pub seed: u64,
}

impl OverlayParams {
    /// The paper's deployment size for the given overlay kind.
    pub fn planetlab(kind: OverlayKind, seed: u64) -> OverlayParams {
        OverlayParams { kind, nodes: 72, load_factor: 1.0, seed }
    }

    /// Region of a node: nodes are spread round-robin over the five regions.
    pub fn region_of(&self, node: NodeId) -> usize {
        node.index() % NUM_REGIONS
    }

    /// Draw the RTT (in ms) between two nodes, given their regions.
    fn pair_rtt(&self, rng: &mut StdRng, a: NodeId, b: NodeId) -> f64 {
        let (ra, rb) = (self.region_of(a), self.region_of(b));
        // Same region: 10–60 ms; adjacent regions: 40–140 ms; far regions
        // (e.g. East Asia to Europe): 120–260 ms. Calibrated so that a
        // uniformly random pair averages ≈ 88 ms (Table 1).
        let distance = (ra as i32 - rb as i32).unsigned_abs().min(4) as usize;
        let (lo, hi) = match distance {
            0 => (10.0, 60.0),
            1 => (40.0, 120.0),
            2 => (60.0, 160.0),
            3 => (100.0, 220.0),
            _ => (120.0, 260.0),
        };
        rng.gen_range(lo..hi) * self.load_factor
    }

    /// Generate the overlay topology. Every link is bidirectional; its
    /// routing cost is the full RTT and its one-way latency is RTT/2.
    pub fn generate(&self) -> Topology {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut topo = Topology::new(self.nodes);
        let nodes: Vec<NodeId> = (0..self.nodes as u32).map(NodeId::new).collect();

        let add =
            |topo: &mut Topology, rng: &mut StdRng, a: NodeId, b: NodeId, this: &OverlayParams| {
                if a == b || topo.has_link(a, b) {
                    return;
                }
                let rtt = this.pair_rtt(rng, a, b);
                let params = LinkParams::with_latency_ms(rtt / 2.0).with_cost(Cost::new(rtt));
                topo.add_bidirectional(a, b, params);
            };

        match self.kind {
            OverlayKind::SparseRandom | OverlayKind::DenseRandom => {
                let degree = self.kind.degree();
                for &a in &nodes {
                    for _ in 0..degree {
                        let &b = nodes.choose(&mut rng).expect("nodes not empty");
                        add(&mut topo, &mut rng, a, b, self);
                    }
                }
            }
            OverlayKind::DenseUunet => {
                let degree = self.kind.degree();
                for &a in &nodes {
                    for _ in 0..degree {
                        // 60% of links stay in-region ("links between nodes
                        // at the same site are selected first"), the rest go
                        // to a random region.
                        let candidates: Vec<NodeId> = if rng.gen_bool(0.6) {
                            nodes
                                .iter()
                                .copied()
                                .filter(|n| self.region_of(*n) == self.region_of(a) && *n != a)
                                .collect()
                        } else {
                            nodes.iter().copied().filter(|n| *n != a).collect()
                        };
                        if let Some(&b) = candidates.choose(&mut rng) {
                            add(&mut topo, &mut rng, a, b, self);
                        }
                    }
                }
            }
        }

        // Guarantee connectivity: chain any node with no links (or an
        // unreachable component) to its predecessor via a same-region-ish
        // link. A ring over all nodes is cheap insurance and barely changes
        // the degree distribution.
        for i in 0..self.nodes {
            let a = NodeId::from(i);
            let b = NodeId::from((i + 1) % self.nodes);
            if !topo.has_link(a, b) && topo.degree(a) < 2 {
                add(&mut topo, &mut rng, a, b, self);
            }
        }
        if !topo.is_strongly_connected() {
            for i in 0..self.nodes {
                let a = NodeId::from(i);
                let b = NodeId::from((i + 1) % self.nodes);
                add(&mut topo, &mut rng, a, b, self);
            }
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_paper_degrees_and_names() {
        assert_eq!(OverlayKind::SparseRandom.degree(), 4);
        assert_eq!(OverlayKind::DenseRandom.degree(), 8);
        assert_eq!(OverlayKind::DenseUunet.degree(), 8);
        assert_eq!(OverlayKind::SparseRandom.name(), "Sparse-Random");
        assert_eq!(OverlayKind::DenseUunet.name(), "Dense-UUNET");
    }

    #[test]
    fn planetlab_presets_have_72_nodes() {
        let p = OverlayParams::planetlab(OverlayKind::SparseRandom, 1);
        assert_eq!(p.nodes, 72);
        assert_eq!(p.load_factor, 1.0);
    }

    #[test]
    fn overlays_are_connected_and_sized() {
        for kind in [OverlayKind::SparseRandom, OverlayKind::DenseRandom, OverlayKind::DenseUunet] {
            let topo = OverlayParams::planetlab(kind, 3).generate();
            assert_eq!(topo.num_nodes(), 72);
            assert!(topo.is_strongly_connected(), "{} disconnected", kind.name());
        }
    }

    #[test]
    fn dense_overlays_have_more_links_than_sparse() {
        let sparse = OverlayParams::planetlab(OverlayKind::SparseRandom, 4).generate();
        let dense = OverlayParams::planetlab(OverlayKind::DenseRandom, 4).generate();
        assert!(dense.num_links() > sparse.num_links());
        assert!(sparse.average_degree() >= 4.0);
        assert!(dense.average_degree() >= 8.0);
    }

    #[test]
    fn random_overlay_link_rtt_is_near_the_papers_88ms() {
        let topo = OverlayParams::planetlab(OverlayKind::SparseRandom, 5).generate();
        // link cost == RTT; average over all links should be in the right
        // ballpark (the paper reports 88 ms, 106 ms under load)
        let mut total = 0.0;
        let mut count = 0;
        for (_, _, p) in topo.all_links() {
            total += p.cost.value();
            count += 1;
        }
        let avg = total / count as f64;
        assert!((60.0..130.0).contains(&avg), "average link RTT {avg} out of range");
    }

    #[test]
    fn uunet_overlay_has_lower_link_rtt_than_random() {
        let avg_rtt = |kind| {
            let topo = OverlayParams::planetlab(kind, 6).generate();
            let (mut total, mut count) = (0.0, 0usize);
            for (_, _, p) in topo.all_links() {
                total += p.cost.value();
                count += 1;
            }
            total / count as f64
        };
        // Dense-UUNET favours nearby nodes so its links are shorter
        // (Table 2: 51 ms vs 106 ms).
        assert!(avg_rtt(OverlayKind::DenseUunet) < avg_rtt(OverlayKind::DenseRandom));
    }

    #[test]
    fn load_factor_scales_rtts() {
        let base = OverlayParams {
            load_factor: 1.0,
            ..OverlayParams::planetlab(OverlayKind::DenseRandom, 7)
        };
        let loaded = OverlayParams {
            load_factor: 1.2,
            ..OverlayParams::planetlab(OverlayKind::DenseRandom, 7)
        };
        let avg = |t: &Topology| {
            let (mut s, mut c) = (0.0, 0);
            for (_, _, p) in t.all_links() {
                s += p.cost.value();
                c += 1;
            }
            s / c as f64
        };
        assert!(avg(&loaded.generate()) > avg(&base.generate()));
    }

    #[test]
    fn regions_partition_nodes() {
        let p = OverlayParams::planetlab(OverlayKind::SparseRandom, 1);
        let mut counts = [0usize; NUM_REGIONS];
        for i in 0..p.nodes {
            counts[p.region_of(NodeId::from(i))] += 1;
        }
        assert!(counts.iter().all(|&c| c > 10));
    }
}
