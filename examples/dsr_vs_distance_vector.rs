//! The paper's central observation (section 5.3): dynamic source routing and
//! the distance-vector/path-vector family "differ only in ... the order in
//! which a query's predicates are evaluated". This example evaluates the
//! right-recursive Best-Path query, the left-recursive DSR query, and the
//! mechanical left/right flip of the rewriter, and shows they all compute
//! the same routes.
//!
//! ```text
//! cargo run --release --example dsr_vs_distance_vector
//! ```

use declarative_routing::datalog::rewrite::{flip_program_recursion, recursion_direction};
use declarative_routing::datalog::{Database, Evaluator};
use declarative_routing::protocols::{best_path, distance_vector, dynamic_source_routing};
use declarative_routing::types::{NodeId, Tuple, Value};
use declarative_routing::workloads::TransitStubParams;

fn main() {
    // A single-domain transit-stub network (10 nodes). The centralized
    // evaluator enumerates every simple path, which is exponential in the
    // graph size — at the 100 nodes this example previously used it
    // diverges (>60 GB RSS) — so the demo stays deliberately small.
    let topo = TransitStubParams {
        domains: 1,
        transit_nodes_per_domain: 2,
        stubs_per_transit_node: 1,
        nodes_per_stub: 4,
        seed: 7,
        ..TransitStubParams::default()
    }
    .generate();
    let links: Vec<Tuple> = topo
        .all_links()
        .map(|(s, d, p)| {
            Tuple::new("link", vec![Value::Node(s), Value::Node(d), Value::from(p.cost.value())])
        })
        .collect();
    let load = |db: &mut Database| {
        for l in &links {
            db.insert(l.clone());
        }
    };

    let right = best_path();
    let left = dynamic_source_routing();
    let flipped = flip_program_recursion(&right);
    println!(
        "recursion direction: Best-Path NR2 = {:?}, DSR1 = {:?}",
        recursion_direction(right.rule("NR2").unwrap()),
        recursion_direction(left.rule("DSR1").unwrap()),
    );

    let mut right_db = Database::new();
    let mut left_db = Database::new();
    let mut flip_db = Database::new();
    load(&mut right_db);
    load(&mut left_db);
    load(&mut flip_db);
    Evaluator::new(right).unwrap().run(&mut right_db).unwrap();
    Evaluator::new(left).unwrap().run(&mut left_db).unwrap();
    Evaluator::new(flipped).unwrap().run(&mut flip_db).unwrap();

    let costs = |db: &Database| {
        let mut v: Vec<Tuple> = db.sorted_tuples("bestPathCost");
        v.sort();
        v
    };
    let right_costs = costs(&right_db);
    assert_eq!(right_costs, costs(&left_db), "DSR must agree with Best-Path");
    assert_eq!(right_costs, costs(&flip_db), "the mechanical flip must agree too");
    println!(
        "all three strategies agree on {} best-path costs over {} nodes",
        right_costs.len(),
        topo.num_nodes()
    );

    // Distance-vector produces next hops; check they are consistent with the
    // best-path costs for a few pairs. The "infinity" bound is DV's only
    // termination mechanism (count-to-infinity: no path vectors, no cycle
    // check), so it must stay close to the real network diameter — the 1e6
    // this example previously passed made the evaluator count link costs up
    // toward a million before converging.
    let mut dv_db = Database::new();
    load(&mut dv_db);
    Evaluator::new(distance_vector(500.0)).unwrap().run(&mut dv_db).unwrap();
    let sample: Vec<Tuple> = dv_db.sorted_tuples("nextHop").into_iter().take(5).collect();
    println!("\nsample distance-vector next hops:");
    for t in sample {
        println!("  {t}");
    }
    println!(
        "\nconclusion: left vs right recursion changes the execution strategy, not the routes."
    );
    let _ = NodeId::new(0);
}
