//! Source-specific multicast (paper section 5.5): subscribers join a group
//! and the query installs a dissemination tree of `forwardState` entries
//! from the source toward every subscriber.
//!
//! ```text
//! cargo run --release --example multicast_tree
//! ```

use declarative_routing::datalog::{Database, Evaluator};
use declarative_routing::protocols::multicast::{join_group_fact, source_specific_multicast};
use declarative_routing::types::{FromTuple, NodeId, TreeEdge, Tuple, Value};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn link(s: u32, d: u32, c: f64) -> Tuple {
    Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
}

fn main() {
    // A binary-tree-ish topology rooted at node 0 with some cross links.
    let mut db = Database::new();
    for (s, d, c) in
        [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (1, 4, 1.0), (2, 5, 1.0), (2, 6, 1.0), (4, 5, 3.0)]
    {
        db.insert(link(s, d, c));
        db.insert(link(d, s, c));
    }

    // Nodes 3, 4, 5 and 6 subscribe to group "video" rooted at node 0.
    for subscriber in [3u32, 4, 5, 6] {
        db.insert(join_group_fact(n(subscriber), n(0), "video"));
    }

    let program = source_specific_multicast(n(0), "video");
    println!("source-specific multicast query:\n{program}");
    Evaluator::new(program).expect("valid program").run(&mut db).expect("terminates");

    // Decode the forwarding state as typed tree edges.
    let mut tree: Vec<TreeEdge> = db
        .sorted_tuples("forwardState")
        .iter()
        .map(|t| TreeEdge::from_tuple(t).expect("forwardState decodes as tree edges"))
        .collect();
    println!("multicast forwarding state (node -> forwards to, group):");
    for edge in &tree {
        println!(
            "  {node} -> {child} (source {source}, group \"{group}\")",
            node = edge.node,
            child = edge.child,
            source = edge.source,
            group = edge.group
        );
    }

    // Derive the dissemination tree edges for display.
    tree.sort();
    tree.dedup_by_key(|e| (e.node, e.child));
    println!("\ndissemination tree edges from the source (n0):");
    for edge in &tree {
        println!("  {node} -> {child}", node = edge.node, child = edge.child);
    }
}
