//! Policy-based routing (paper section 5.2): avoid "undesirable" nodes by
//! adding one rule and a per-node `excludeNode` policy table, plus a
//! QoS-bounded variant.
//!
//! ```text
//! cargo run --release --example policy_routing
//! ```

use declarative_routing::datalog::{Database, Evaluator};
use declarative_routing::protocols::best_path_with_cost_bound;
use declarative_routing::protocols::policy::{exclude_fact, policy_routing};
use declarative_routing::types::{FromTuple, NodeId, RouteEntry, Tuple, Value};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn link(s: u32, d: u32, c: f64) -> Tuple {
    Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
}

fn main() {
    // A small ISP-like network: two parallel routes from 0 to 5, one through
    // a "flaky" provider (nodes 1-2), one through a trustworthy but slower
    // provider (nodes 3-4).
    let mut db = Database::new();
    for (s, d, c) in [(0, 1, 1.0), (1, 2, 1.0), (2, 5, 1.0), (0, 3, 3.0), (3, 4, 3.0), (4, 5, 3.0)]
    {
        db.insert(link(s, d, c));
        db.insert(link(d, s, c));
    }

    // Policy at node 0: never carry traffic through node 2.
    db.insert(exclude_fact(n(0), n(2)));
    // The other nodes have a permissive policy (exclude an unused address).
    for i in 1..6u32 {
        db.insert(exclude_fact(n(i), n(99)));
    }

    let program = policy_routing();
    println!("policy-based routing query:\n{program}");
    Evaluator::new(program).expect("valid program").run(&mut db).expect("terminates");

    let show = |db: &Database, rel: &str| {
        for t in db.sorted_tuples(rel) {
            let route = RouteEntry::from_tuple(&t).expect("path results are route-shaped");
            if route.src == n(0) && route.dst == n(5) {
                println!("  {path} at cost {cost}", path = route.path, cost = route.cost);
            }
        }
    };
    println!("\nall paths 0 -> 5 (unfiltered):");
    show(&db, "path");
    println!("\npermitted best path 0 -> 5 (avoids node 2):");
    show(&db, "bestPermitted");

    // QoS variant: only accept paths cheaper than 5.
    let mut qos_db = Database::new();
    for (s, d, c) in [(0, 1, 1.0), (1, 5, 1.0), (0, 3, 3.0), (3, 5, 3.0)] {
        qos_db.insert(link(s, d, c));
        qos_db.insert(link(d, s, c));
    }
    Evaluator::new(best_path_with_cost_bound(5.0))
        .expect("valid program")
        .run(&mut qos_db)
        .expect("terminates");
    println!("\nQoS-bounded (cost < 5) best paths from node 0:");
    for t in qos_db.sorted_tuples("bestPath") {
        let route = RouteEntry::from_tuple(&t).expect("bestPath results are route-shaped");
        if route.src == n(0) {
            println!(
                "  -> {dst}: {path} at cost {cost}",
                dst = route.dst,
                path = route.path,
                cost = route.cost
            );
        }
    }
}
