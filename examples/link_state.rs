//! Link-state routing (paper section 5.4): flood every link to every node,
//! then compute routes locally — expressed in a handful of Datalog rules and
//! executed by the same engine as every other protocol.
//!
//! ```text
//! cargo run --release --example link_state
//! ```

use declarative_routing::datalog::{check_safety, Database, Evaluator};
use declarative_routing::protocols::link_state;
use declarative_routing::types::{FromTuple, NodeId, ReachEntry, RouteEntry, Tuple, Value};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn link(s: u32, d: u32, c: f64) -> Tuple {
    Tuple::new("link", vec![Value::Node(n(s)), Value::Node(n(d)), Value::from(c)])
}

fn main() {
    let program = link_state();
    println!("link-state query:\n{program}");
    let report = check_safety(&program);
    println!("safety analysis: {report}");

    // A ring of 8 nodes with one shortcut.
    let mut db = Database::new();
    for i in 0..8u32 {
        let j = (i + 1) % 8;
        db.insert(link(i, j, 1.0));
        db.insert(link(j, i, 1.0));
    }
    db.insert(link(0, 4, 1.5));
    db.insert(link(4, 0, 1.5));

    Evaluator::new(program).expect("valid program").run(&mut db).expect("terminates");

    // Every node has learned every link. `floodLink(@M,S,D,C,N)` leads with
    // (holder, link source), so the ReachEntry projection filters by holder.
    let total_links = 18;
    for node in 0..8u32 {
        let known = db
            .sorted_tuples("floodLink")
            .iter()
            .map(|t| ReachEntry::from_tuple(t).expect("floodLink leads with two nodes"))
            .filter(|e| e.src == n(node))
            .count();
        println!("node n{node} knows about {known} flooded link advertisements");
        assert!(known >= total_links);
    }

    println!("\nlocally computed best routes from n0:");
    for t in db.sorted_tuples("lsBest") {
        let route = RouteEntry::from_tuple(&t).expect("lsBest is route-shaped");
        if route.src == n(0) {
            println!(
                "  {route_dst} via {path} at cost {cost}",
                route_dst = route.dst,
                path = route.path,
                cost = route.cost
            );
        }
    }
}
