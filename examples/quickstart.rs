//! Quickstart: run the paper's all-pairs Best-Path query on a small
//! transit-stub network and print a few routes and summary statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use declarative_routing::engine::scenario::{QueryDef, ScenarioBuilder};
use declarative_routing::netsim::{SimDuration, SimTime};
use declarative_routing::protocols::best_path;
use declarative_routing::types::NodeId;
use declarative_routing::workloads::TransitStubParams;

fn main() {
    // 1. Build a 100-node GT-ITM-style transit-stub topology (paper section 9.1).
    let topology = TransitStubParams::sized(100, 42).generate();
    println!(
        "topology: {} nodes, {} directed links, diameter {:.0} ms",
        topology.num_nodes(),
        topology.num_links(),
        topology.diameter_latency_ms()
    );

    // 2. Describe the experiment as a scenario: issue the Best-Path query
    //    (rules NR1/NR2/BPR1/BPR2 of the paper) from node 0 at t=0, run
    //    until the routes converge, sampling once per simulated second.
    let query = best_path();
    println!("\nissuing the Best-Path query:\n{query}");
    let run = ScenarioBuilder::over(topology)
        .query(QueryDef::new(query).named("quickstart-best-path"))
        .sample_every(SimDuration::from_secs(1))
        .until(SimTime::from_secs(90))
        .execute()
        .expect("scenario runs and results decode as routes");
    let report = &run.report.queries[0];
    println!(
        "converged after {:?} simulated seconds; {} routes; {:.1} KB sent per node",
        report.converged_at.map(|t| t.as_secs_f64()),
        report.final_results(),
        run.report.per_node_overhead_kb
    );

    // 3. The finished run keeps the harness and the typed handle, so the
    //    deployment stays inspectable: look at a forwarding table...
    let handle = &run.handles[0];
    let node = NodeId::new(1);
    let fwd = handle.forwarding_table(&run.harness, node);
    println!("\nforwarding table of {node} (first 5 destinations):");
    for (dest, next) in fwd.iter().take(5) {
        println!("  {dest} via {next}");
    }

    // 4. ...and the full best path for one pair, as a typed route.
    let routes = handle.results_at(&run.harness, node).expect("results decode as routes");
    if let Some(route) = routes.into_iter().find(|r| r.dst == NodeId::new(50)) {
        println!(
            "\nbest path {src} -> {dst}: {path} ({hops} hops, cost {cost})",
            src = route.src,
            dst = route.dst,
            path = route.path,
            hops = route.hops(),
            cost = route.cost,
        );
    }
}
