//! Quickstart: run the paper's all-pairs Best-Path query on a small
//! transit-stub network and print a few routes and summary statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::netsim::{SimDuration, SimTime};
use declarative_routing::protocols::best_path;
use declarative_routing::types::NodeId;
use declarative_routing::workloads::TransitStubParams;

fn main() {
    // 1. Build a 100-node GT-ITM-style transit-stub topology (paper section 9.1).
    let topology = TransitStubParams::sized(100, 42).generate();
    println!(
        "topology: {} nodes, {} directed links, diameter {:.0} ms",
        topology.num_nodes(),
        topology.num_links(),
        topology.diameter_latency_ms()
    );

    // 2. Start a query processor on every node and issue the Best-Path query
    //    (rules NR1/NR2/BPR1/BPR2 of the paper) from node 0. The builder
    //    returns a typed handle whose results decode as `RouteEntry`s.
    let query = best_path();
    println!("\nissuing the Best-Path query:\n{query}");
    let mut harness = RoutingHarness::new(topology);
    let handle = harness
        .issue(query)
        .from(NodeId::new(0))
        .at(SimTime::ZERO)
        .named("quickstart-best-path")
        .submit()
        .expect("query localizes");

    // 3. Run until the routes converge, sampling once per simulated second.
    let report = handle
        .run_and_sample(&mut harness, SimDuration::from_secs(1), SimTime::from_secs(90))
        .expect("results decode as routes");
    println!(
        "converged after {:?} simulated seconds; {} routes; {:.1} KB sent per node",
        report.converged_at.map(|t| t.as_secs_f64()),
        report.final_results(),
        report.per_node_overhead_kb
    );

    // 4. Inspect a forwarding table.
    let node = NodeId::new(1);
    let fwd = handle.forwarding_table(&harness, node);
    println!("\nforwarding table of {node} (first 5 destinations):");
    for (dest, next) in fwd.iter().take(5) {
        println!("  {dest} via {next}");
    }

    // 5. And the full best path for one pair, as a typed route.
    let routes = handle.results_at(&harness, node).expect("results decode as routes");
    if let Some(route) = routes.into_iter().find(|r| r.dst == NodeId::new(50)) {
        println!(
            "\nbest path {src} -> {dst}: {path} ({hops} hops, cost {cost})",
            src = route.src,
            dst = route.dst,
            path = route.path,
            hops = route.hops(),
            cost = route.cost,
        );
    }
}
