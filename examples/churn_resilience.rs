//! Long-lived routes under churn (paper sections 8 and 9.2.4): run the
//! continuous Best-Path query on an emulated PlanetLab-style overlay, fail a
//! fraction of the nodes, and watch the routes heal without reissuing the
//! query.
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::netsim::{SimDuration, SimTime};
use declarative_routing::protocols::best_path;
use declarative_routing::types::NodeId;
use declarative_routing::workloads::{ChurnSchedule, OverlayKind, OverlayParams};
use std::time::Instant;

fn main() {
    // 16-node Dense-UUNET overlay — the dense configuration the paper's
    // churn figures use (scaled down to demo size). Failing well-connected
    // nodes of a dense overlay is exactly the case that used to blow up
    // incremental maintenance (exponentially many ∞-cost tombstone paths)
    // before the §8 tombstone pruning; it now completes in seconds, and the
    // wall-clock guard at the bottom makes a regression fail loudly instead
    // of hanging.
    let wall = Instant::now();
    let params =
        OverlayParams { nodes: 16, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 9) };
    let topology = params.generate();
    println!(
        "overlay: {} nodes, avg degree {:.1}, avg link RTT {:.0} ms",
        topology.num_nodes(),
        topology.average_degree(),
        2.0 * topology.average_link_latency_ms(),
    );

    let mut harness = RoutingHarness::new(topology);
    let handle = harness
        .issue(best_path())
        .from(NodeId::new(0))
        .at(SimTime::ZERO)
        .named("churn-best-path")
        .submit()
        .expect("query localizes");

    // Converge, then fail 20% of the nodes for 60 s and bring them back.
    harness.run_until(SimTime::from_secs(120));
    let routes_before = handle.finite_results(&harness).expect("routes decode").len();
    let avg_before = handle.average_cost(&harness).expect("routes decode");
    println!("after convergence: {routes_before} routes, AvgPathRTT {avg_before:.0} ms");

    let schedule = ChurnSchedule::alternating(
        16,
        0.2,
        SimTime::from_secs(120),
        SimDuration::from_secs(60),
        1,
        7,
    );
    println!("\ninjecting churn:");
    for event in schedule.events() {
        println!(
            "  {:>6.0}s  {:?} nodes affected: {}",
            event.time().as_secs_f64(),
            match event {
                declarative_routing::workloads::churn::ChurnEvent::Fail(..) => "fail",
                declarative_routing::workloads::churn::ChurnEvent::Join(..) => "join",
            },
            event.nodes().len()
        );
    }
    schedule.apply(harness.sim_mut());

    // Sample AvgPathRTT while the churn plays out.
    let mut t = SimTime::from_secs(120);
    let end = schedule.end_time() + SimDuration::from_secs(60);
    println!("\n time_s  routes  AvgPathRTT_ms");
    while t < end {
        t += SimDuration::from_secs(20);
        harness.run_until(t);
        let finite = handle.finite_results(&harness).expect("routes decode");
        let avg = handle.average_cost(&harness).expect("routes decode");
        println!("{:>7.0}  {:>6}  {:>10.0}", t.as_secs_f64(), finite.len(), avg);
    }

    let routes_after = handle.finite_results(&harness).expect("routes decode").len();
    let stats = harness.processor_stats();
    println!(
        "\nroutes recovered: {routes_after} of {routes_before}; total per-node overhead {:.0} KB; \
         ∞-tombstones collapsed: {}",
        harness.per_node_overhead_kb(),
        stats.tombstones_collapsed,
    );

    // Regression guard: the pre-pruning engine ran this cycle for minutes
    // (and tens of GB) before being killed. Fail loudly instead of hanging.
    let elapsed = wall.elapsed();
    assert!(
        elapsed.as_secs() < 120,
        "dense-overlay churn cycle took {elapsed:?}; ∞-tombstone pruning has regressed"
    );
    println!("wall clock: {elapsed:?} (guard: < 120 s)");
}
