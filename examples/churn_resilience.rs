//! Long-lived routes under churn (paper sections 8 and 9.2.4): run the
//! continuous Best-Path query on an emulated PlanetLab-style overlay, fail a
//! fraction of the nodes, and watch the routes heal without reissuing the
//! query.
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use declarative_routing::engine::harness::{IssueOptions, RoutingHarness};
use declarative_routing::netsim::{SimDuration, SimTime};
use declarative_routing::protocols::best_path;
use declarative_routing::types::{NodeId, Value};
use declarative_routing::workloads::{ChurnSchedule, OverlayKind, OverlayParams};

fn main() {
    // 36-node Dense-UUNET-like overlay (half of the paper's 72 PlanetLab
    // nodes, for a fast demo).
    let params =
        OverlayParams { nodes: 36, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 9) };
    let topology = params.generate();
    println!(
        "overlay: {} nodes, avg degree {:.1}, avg link RTT {:.0} ms",
        topology.num_nodes(),
        topology.average_degree(),
        2.0 * topology.average_link_latency_ms(),
    );

    let mut harness = RoutingHarness::new(topology);
    let qid = harness
        .issue_program(NodeId::new(0), SimTime::ZERO, &best_path(), IssueOptions::default())
        .expect("query localizes");

    // Converge, then churn 20% of the nodes every 60 s for two cycles.
    harness.run_until(SimTime::from_secs(120));
    let routes_before = harness.finite_results(qid).len();
    let avg_before = harness.average_result_cost(qid);
    println!("after convergence: {routes_before} routes, AvgPathRTT {avg_before:.0} ms");

    let schedule = ChurnSchedule::alternating(
        36,
        0.2,
        SimTime::from_secs(120),
        SimDuration::from_secs(60),
        2,
        7,
    );
    println!("\ninjecting churn:");
    for event in schedule.events() {
        println!(
            "  {:>6.0}s  {:?} nodes affected: {}",
            event.time().as_secs_f64(),
            match event {
                declarative_routing::workloads::churn::ChurnEvent::Fail(..) => "fail",
                declarative_routing::workloads::churn::ChurnEvent::Join(..) => "join",
            },
            event.nodes().len()
        );
    }
    schedule.apply(harness.sim_mut());

    // Sample AvgPathRTT while the churn plays out.
    let mut t = SimTime::from_secs(120);
    let end = schedule.end_time() + SimDuration::from_secs(60);
    println!("\n time_s  routes  AvgPathRTT_ms");
    while t < end {
        t += SimDuration::from_secs(20);
        harness.run_until(t);
        let finite = harness.finite_results(qid);
        let live: Vec<f64> = finite
            .iter()
            .filter_map(|r| r.fields().last().and_then(Value::as_cost))
            .map(|c| c.value())
            .collect();
        let avg = if live.is_empty() { 0.0 } else { live.iter().sum::<f64>() / live.len() as f64 };
        println!("{:>7.0}  {:>6}  {:>10.0}", t.as_secs_f64(), live.len(), avg);
    }

    let routes_after = harness.finite_results(qid).len();
    println!(
        "\nroutes recovered: {routes_after} of {routes_before}; total per-node overhead {:.0} KB",
        harness.per_node_overhead_kb()
    );
}
