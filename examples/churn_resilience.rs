//! Long-lived routes under churn (paper sections 8 and 9.2.4): run the
//! continuous Best-Path query on an emulated PlanetLab-style overlay as a
//! declarative scenario, fail a fraction of the nodes, and watch the routes
//! heal without reissuing the query.
//!
//! ```text
//! cargo run --release --example churn_resilience
//! ```

use declarative_routing::engine::scenario::{Probe, QueryDef, ScenarioBuilder};
use declarative_routing::netsim::{SimDuration, SimTime};
use declarative_routing::protocols::best_path;
use declarative_routing::workloads::{ChurnSchedule, OverlayKind, OverlayParams};
use std::time::Instant;

fn main() {
    // 16-node Dense-UUNET overlay — the dense configuration the paper's
    // churn figures use (scaled down to demo size). Failing well-connected
    // nodes of a dense overlay is exactly the case that used to blow up
    // incremental maintenance (exponentially many ∞-cost tombstone paths)
    // before the §8 tombstone pruning; it now completes in seconds, and the
    // wall-clock guard at the bottom makes a regression fail loudly instead
    // of hanging.
    let wall = Instant::now();
    let params =
        OverlayParams { nodes: 16, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 9) };
    let topology = params.generate();
    println!(
        "overlay: {} nodes, avg degree {:.1}, avg link RTT {:.0} ms",
        topology.num_nodes(),
        topology.average_degree(),
        2.0 * topology.average_link_latency_ms(),
    );

    // Converge for 120 s, then fail 20% of the nodes for 60 s and bring
    // them back — the whole choreography is one scenario: the churn
    // schedule is a timeline source, and the sampling/recovery probes
    // replace the hand-written measurement loop.
    let schedule = ChurnSchedule::alternating(
        16,
        0.2,
        SimTime::from_secs(120),
        SimDuration::from_secs(60),
        1,
        7,
    );
    println!("\ninjecting churn:");
    for event in schedule.events() {
        println!(
            "  {:>6.0}s  {:?} nodes affected: {}",
            event.time().as_secs_f64(),
            match event {
                declarative_routing::workloads::churn::ChurnEvent::Fail(..) => "fail",
                declarative_routing::workloads::churn::ChurnEvent::Join(..) => "join",
            },
            event.nodes().len()
        );
    }

    // Sample at the paper's 1 s cadence — the Recovery probe quantizes
    // each recovery up to the next sample, so a coarse cadence would
    // inflate the reported times — and thin the printed table to one row
    // per 20 s.
    let end = schedule.end_time() + SimDuration::from_secs(60);
    let run = ScenarioBuilder::over(topology)
        .query(QueryDef::new(best_path()).named("churn-best-path"))
        .source(&schedule)
        .sample_every(SimDuration::from_secs(1))
        .until(end)
        .probe(Probe::Recovery)
        .execute()
        .expect("churn scenario runs and routes decode");

    // The result-set samples show convergence, the dip while nodes are
    // down, and the healing after the rejoin.
    println!("\n time_s  routes  AvgPathRTT_ms");
    for s in &run.report.queries[0].samples {
        if s.time.as_micros() % SimDuration::from_secs(20).as_micros() == 0 {
            println!("{:>7.0}  {:>6}  {:>10.0}", s.time.as_secs_f64(), s.results, s.avg_cost);
        }
    }

    let recoveries = run.report.recovery_times();
    let stats = run.harness.processor_stats();
    println!(
        "\npaths recovered: {} (avg recovery {:.1} s, §9.1: detection delay excluded); \
         total per-node overhead {:.0} KB; ∞-tombstones collapsed: {}",
        recoveries.len(),
        recoveries.iter().sum::<f64>() / recoveries.len().max(1) as f64,
        run.report.per_node_overhead_kb,
        stats.tombstones_collapsed,
    );

    // Regression guard: the pre-pruning engine ran this cycle for minutes
    // (and tens of GB) before being killed. Fail loudly instead of hanging.
    let elapsed = wall.elapsed();
    assert!(
        elapsed.as_secs() < 120,
        "dense-overlay churn cycle took {elapsed:?}; ∞-tombstone pruning has regressed"
    );
    println!("wall clock: {elapsed:?} (guard: < 120 s)");
}
