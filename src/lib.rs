//! # declarative-routing
//!
//! A from-scratch Rust reproduction of *"Declarative Routing: Extensible
//! Routing with Declarative Queries"* (Loo, Hellerstein, Stoica,
//! Ramakrishnan — SIGCOMM 2005): routing protocols are written as recursive
//! Datalog queries and executed as distributed dataflows by a query
//! processor running on every node of a (simulated) network.
//!
//! This crate is a façade that re-exports the workspace's building blocks:
//!
//! * [`datalog`] — the Datalog dialect: parser, semi-naïve evaluator, safety
//!   analysis, query rewrites.
//! * [`netsim`] — the deterministic discrete-event network simulator.
//! * [`engine`] — the distributed query processor (localization, per-node
//!   execution, incremental maintenance, multi-query sharing) and the
//!   experiment harness.
//! * [`protocols`] — every protocol from the paper as a ready-made query.
//! * [`provenance`] — derivation provenance: per-tuple derivation records
//!   and the [`provenance::DerivationTree`] proof trees behind
//!   `RoutingHarness::explain`.
//! * [`baselines`] — hand-coded path-vector / distance-vector baselines.
//! * [`workloads`] — topologies, RTT models, churn and query workloads.
//! * [`service`] — the long-lived routing service: client sessions issue,
//!   tear down, and subscribe to queries over a framed protocol (in-process
//!   for tests, TCP via the `dr-serviced` daemon), with a line-oriented
//!   JSON stats endpoint.
//!
//! Queries are issued through the harness's fluent builder and observed
//! through the typed [`engine::harness::QueryHandle`] it returns; results
//! decode into views such as [`types::RouteEntry`] instead of positional
//! tuple fields. Whole experiments — topology + event timeline (query
//! issuance, churn, link dynamics) + typed probes — are described
//! declaratively with [`engine::scenario::ScenarioBuilder`] and run into a
//! plain-data [`engine::scenario::ScenarioReport`]:
//!
//! ```no_run
//! use declarative_routing::engine::harness::RoutingHarness;
//! use declarative_routing::netsim::SimTime;
//! use declarative_routing::protocols::best_path;
//! use declarative_routing::types::NodeId;
//! use declarative_routing::workloads::TransitStubParams;
//!
//! let topology = TransitStubParams::sized(100, 42).generate();
//! let mut harness = RoutingHarness::new(topology);
//! let handle = harness
//!     .issue(best_path())
//!     .from(NodeId::new(0))
//!     .at(SimTime::ZERO)
//!     .submit()
//!     .unwrap();
//! harness.run_until(SimTime::from_secs(60));
//! let routes = handle.finite_results(&harness).unwrap(); // Vec<RouteEntry>
//! println!("routes: {}", routes.len());
//! for route in routes.iter().take(3) {
//!     println!("{} -> {} via {} (cost {})", route.src, route.dst, route.path, route.cost);
//! }
//! ```
//!
//! ## Delivery guarantees on an unreliable wire
//!
//! Handing [`netsim::FaultPlan`] to a scenario makes the wire adversarial
//! (seeded drops, duplicates, reordering, bursts) and turns on the
//! processor's loss-tolerant transport; the protocol still converges to
//! exactly the lossless fixed point:
//!
//! ```
//! use std::collections::BTreeMap;
//!
//! use declarative_routing::engine::scenario::{QueryDef, ScenarioBuilder, ScenarioRun};
//! use declarative_routing::netsim::{FaultPlan, LinkFaults, SimTime};
//! use declarative_routing::protocols::best_path;
//! use declarative_routing::types::NodeId;
//! use declarative_routing::workloads::{OverlayKind, OverlayParams};
//!
//! let topology = OverlayParams { nodes: 8, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 7) }
//!     .generate();
//!
//! // What the wire may do: drop 5% of messages and deliver another 10% twice,
//! // deterministically derived from the seed.
//! let faults = FaultPlan::new(7).uniform(LinkFaults::none().with_drop(0.05).with_duplicate(0.10));
//!
//! let run = |plan: Option<FaultPlan>| -> ScenarioRun {
//!     let mut scenario = ScenarioBuilder::over(topology.clone()).query(QueryDef::new(best_path()));
//!     if let Some(plan) = plan {
//!         scenario = scenario.faults(plan); // also enables the reliable transport
//!     }
//!     scenario.until(SimTime::from_secs(45)).execute().unwrap()
//! };
//! let routes = |r: &ScenarioRun| -> BTreeMap<(NodeId, NodeId), u64> {
//!     (0..8u32)
//!         .map(NodeId::new)
//!         .flat_map(|node| r.handles[0].results_at(&r.harness, node).unwrap())
//!         .filter(|route| route.cost.is_finite())
//!         .map(|route| ((route.src, route.dst), (route.cost.value() * 1000.0).round() as u64))
//!         .collect()
//! };
//!
//! let lossy = run(Some(faults));
//! let clean = run(None);
//! assert_eq!(routes(&lossy), routes(&clean), "same fixed point despite loss");
//!
//! // The transport did real work to get there.
//! let stats = lossy.harness.processor_stats();
//! assert!(stats.retransmits > 0 && stats.dups_dropped > 0 && stats.acks_sent > 0);
//! ```
//!
//! ## Explaining routes
//!
//! Issuing with `.provenance(true)` records, for every derived tuple,
//! which rule fired on which node from which body tuples. `explain`
//! stitches those records — following cross-node pointers over the
//! simulated wire — into a [`provenance::DerivationTree`] proof whose
//! leaves are base link facts, and [`provenance::diff_explanations`]
//! reports exactly which rule firings a reroute removed and added:
//!
//! ```
//! use declarative_routing::engine::harness::RoutingHarness;
//! use declarative_routing::netsim::{LinkParams, SimTime, Topology};
//! use declarative_routing::protocols::best_path;
//! use declarative_routing::provenance::diff_explanations;
//! use declarative_routing::types::{Cost, NodeId, Value};
//!
//! // A square: two equal-cost two-hop routes 0 -> 3, via 1 or via 2.
//! let mut topology = Topology::new(4);
//! for (a, b) in [(0u32, 1u32), (0, 2), (1, 3), (2, 3)] {
//!     topology.add_bidirectional(
//!         NodeId::new(a),
//!         NodeId::new(b),
//!         LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
//!     );
//! }
//! let mut harness = RoutingHarness::new(topology);
//! let handle = harness.issue(best_path()).provenance(true).submit().unwrap();
//! harness.run_until(SimTime::from_secs(30));
//!
//! // Explain node 0's route to node 3: a multi-node proof tree.
//! let qid = handle.id();
//! let route = |h: &RoutingHarness| {
//!     h.sim()
//!         .app(NodeId::new(0))
//!         .tuples(qid, "bestPath")
//!         .into_iter()
//!         .find(|t| {
//!             t.field(1) == Some(&Value::Node(NodeId::new(3)))
//!                 && t.field(3).and_then(Value::as_cost).is_some_and(|c| c.is_finite())
//!         })
//!         .unwrap()
//! };
//! let before_route = route(&harness);
//! let before = harness.explain(qid, &before_route).unwrap();
//! assert!(before.is_fully_resolved());
//!
//! // Fail whichever node the proof goes through and re-explain: the diff
//! // lists the firings the reroute removed and added, and no added step
//! // fires on the failed node.
//! let via = if before.steps().iter().any(|s| s.node == NodeId::new(1)) { 1 } else { 2 };
//! harness.sim_mut().schedule_node_fail(SimTime::from_secs(30), NodeId::new(via));
//! harness.run_until(SimTime::from_secs(60));
//! let after = harness.explain(qid, &route(&harness)).unwrap();
//! let diff = diff_explanations(&before, &after);
//! assert!(!diff.removed.is_empty() && !diff.added.is_empty());
//! assert!(diff.added.iter().all(|step| step.node != NodeId::new(via)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dr_baselines as baselines;
pub use dr_core as engine;
pub use dr_datalog as datalog;
pub use dr_netsim as netsim;
pub use dr_protocols as protocols;
pub use dr_provenance as provenance;
pub use dr_service as service;
pub use dr_types as types;
pub use dr_workloads as workloads;
