//! Cross-crate integration tests: protocols from `dr-protocols`, localized
//! by `dr-core`, executed over `dr-netsim` topologies from `dr-workloads`,
//! and cross-checked against the centralized evaluator and the hand-coded
//! baselines.

use declarative_routing::baselines::{PathVectorConfig, PathVectorNode};
use declarative_routing::datalog::{check_safety, Database, Evaluator};
use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::netsim::{SimConfig, SimDuration, SimTime, Simulator};
use declarative_routing::protocols::{
    best_path, best_path_pairs, best_path_pairs_share, distance_vector, dynamic_source_routing,
};
use declarative_routing::types::{Cost, FromTuple, NodeId, RouteEntry, Tuple, Value};
use declarative_routing::workloads::{OverlayKind, OverlayParams, PairWorkload, TransitStubParams};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn small_transit_stub(seed: u64) -> declarative_routing::netsim::Topology {
    TransitStubParams {
        domains: 1,
        transit_nodes_per_domain: 2,
        stubs_per_transit_node: 2,
        nodes_per_stub: 4,
        seed,
        ..TransitStubParams::default()
    }
    .generate()
}

/// Cost rounded to integer milliseconds, for order-insensitive comparisons.
fn millis(cost: Cost) -> u64 {
    (cost.value() * 1000.0).round() as u64
}

/// The distributed Best-Path execution agrees with (a) the centralized
/// evaluator and (b) the hand-coded path-vector baseline on the same
/// topology.
#[test]
fn distributed_centralized_and_baseline_agree() {
    let topo = small_transit_stub(3);
    let nodes = topo.num_nodes();

    // Distributed execution.
    let mut harness = RoutingHarness::new(topo.clone());
    let handle = harness.issue(best_path()).from(n(0)).at(SimTime::ZERO).submit().unwrap();
    harness.run_until(SimTime::from_secs(90));
    let mut distributed: Vec<(NodeId, NodeId, u64)> = handle
        .finite_results(&harness)
        .unwrap()
        .into_iter()
        .map(|r| (r.src, r.dst, millis(r.cost)))
        .collect();
    distributed.sort();
    assert_eq!(distributed.len(), nodes * (nodes - 1));

    // Centralized evaluation over the same link table.
    let mut db = Database::new();
    for (s, d, p) in topo.all_links() {
        db.insert(Tuple::new(
            "link",
            vec![Value::Node(s), Value::Node(d), Value::from(p.cost.value())],
        ));
    }
    Evaluator::new(best_path()).unwrap().run(&mut db).unwrap();
    let mut central: Vec<(NodeId, NodeId, u64)> = db
        .tuples("bestPath")
        .iter()
        .map(|t| RouteEntry::from_tuple(t).expect("centralized bestPath is route-shaped"))
        .map(|r| (r.src, r.dst, millis(r.cost)))
        .collect();
    central.sort();
    assert_eq!(distributed, central, "distributed execution must match centralized evaluation");

    // Hand-coded path-vector baseline.
    let apps: Vec<PathVectorNode> =
        (0..nodes).map(|_| PathVectorNode::new(PathVectorConfig::default())).collect();
    let mut sim = Simulator::new(topo, apps, SimConfig::default());
    sim.run_until(SimTime::from_secs(90));
    for (src, dst, cost_millis) in &distributed {
        let route = sim.app(*src).route_to(*dst).expect("baseline must find the route");
        assert_eq!(millis(route.cost), *cost_millis, "baseline disagrees on {src}->{dst}");
    }
}

/// Pair queries (magic sets + left recursion) return the same answer as the
/// all-pairs query, for a sample of random pairs on a dense random overlay.
///
/// The typed `RouteEntry` comparison reports every disagreeing pair in one
/// deterministic diff instead of failing on the first mismatch.
#[test]
fn pair_queries_match_all_pairs_routes() {
    let params =
        OverlayParams { nodes: 16, ..OverlayParams::planetlab(OverlayKind::DenseRandom, 5) };
    let topo = params.generate();

    let mut all_pairs = RoutingHarness::new(topo.clone());
    let all_handle = all_pairs.issue(best_path()).from(n(0)).at(SimTime::ZERO).submit().unwrap();
    all_pairs.run_until(SimTime::from_secs(120));

    let mut workload = PairWorkload::new(16, 11);
    let mut harness = RoutingHarness::new(topo);
    let mut now = SimTime::ZERO;
    let mut disagreements: Vec<String> = Vec::new();
    for i in 0..4 {
        let (src, dst) = workload.next_pair();
        let handle = harness
            .issue(best_path_pairs(src, dst))
            .named(format!("pair{i}"))
            .replicated(["magicDsts"])
            .from(src)
            .at(now)
            .submit()
            .unwrap();
        now += SimDuration::from_secs(60);
        harness.run_until(now);

        let pair_route =
            handle.results_at(&harness, src).unwrap().into_iter().find(|r| r.dst == dst);
        let reference =
            all_handle.results_at(&all_pairs, src).unwrap().into_iter().find(|r| r.dst == dst);
        let pair_cost = pair_route.as_ref().map(|r| millis(r.cost));
        let ref_cost = reference.as_ref().map(|r| millis(r.cost));
        if pair_cost != ref_cost {
            disagreements.push(format!(
                "{src}->{dst}: pair query found {pair:?} (cost {pair_cost:?} ms), \
                 all-pairs reference found {refr:?} (cost {ref_cost:?} ms)",
                pair = pair_route.as_ref().map(|r| r.path.to_string()),
                refr = reference.as_ref().map(|r| r.path.to_string()),
            ));
        }
    }
    assert!(
        disagreements.is_empty(),
        "pair queries disagree with the all-pairs reference on {} of 4 pairs:\n  {}",
        disagreements.len(),
        disagreements.join("\n  ")
    );
}

/// Work sharing reduces communication: issuing many shared queries toward a
/// single destination costs less than the same queries without sharing.
#[test]
fn sharing_reduces_overhead_for_common_destinations() {
    let topo = small_transit_stub(9);
    let nodes = topo.num_nodes();
    let dest = n((nodes - 1) as u32);
    let sources: Vec<NodeId> = (1..5).map(n).collect();

    let run = |share: bool| {
        let mut harness = RoutingHarness::new(small_transit_stub(9));
        let mut now = SimTime::ZERO;
        for (i, src) in sources.iter().enumerate() {
            let builder = if share {
                harness
                    .issue(best_path_pairs_share(*src, dest, "bestPathCache"))
                    .named(format!("s{i}"))
                    .sharing(true)
            } else {
                harness.issue(best_path_pairs(*src, dest)).named(format!("p{i}"))
            };
            builder.replicated(["magicDsts"]).from(*src).at(now).submit().unwrap();
            now += SimDuration::from_secs(20);
            harness.run_until(now);
        }
        harness.run_until(now + SimDuration::from_secs(20));
        let cache_entries: usize =
            (0..nodes).map(|i| harness.sim().app(n(i as u32)).best_path_cache().len()).sum();
        (harness.per_node_overhead_kb(), harness.sim().metrics().total_bytes(), cache_entries)
    };

    let (kb_share, bytes_share, cache_entries) = run(true);
    let (kb_noshare, bytes_noshare, _) = run(false);
    // At this tiny scale the byte difference can go either way (the shared
    // variant pays for cache-install messages up front), so the hard
    // assertions are: the cache actually got populated, and sharing does not
    // blow up traffic. The quantitative crossover is measured by the Fig. 7/8
    // harness (`dr-bench`), not here.
    assert!(cache_entries > 0, "shared queries must populate bestPathCache");
    assert!(
        bytes_share <= bytes_noshare * 2,
        "sharing should not blow up traffic: {bytes_share} vs {bytes_noshare} bytes \
         ({kb_share:.2} vs {kb_noshare:.2} KB/node)"
    );
}

/// Every protocol shipped in `dr-protocols` passes the paper's static safety
/// analysis and localizes for distributed execution.
#[test]
fn protocols_are_safe_and_localizable() {
    use declarative_routing::engine::localize::localize;
    let programs = vec![
        ("best_path", best_path(), vec![]),
        ("distance_vector", distance_vector(64.0), vec![]),
        ("dsr", dynamic_source_routing(), vec![]),
        ("pairs", best_path_pairs(n(0), n(5)), vec![]),
        ("pairs_share", best_path_pairs_share(n(0), n(5), "bestPathCache"), vec!["magicDsts"]),
    ];
    for (name, program, replicated) in programs {
        assert!(check_safety(&program).is_safe(), "{name} failed safety analysis");
        localize(&program, &replicated)
            .unwrap_or_else(|e| panic!("{name} failed to localize: {e}"));
    }
}

/// Routes survive a node failure and heal around it (the §8 scenario) on a
/// randomly generated overlay, expressed as a declarative scenario with a
/// recovery probe.
#[test]
fn routes_heal_after_node_failure_on_an_overlay() {
    use declarative_routing::engine::scenario::{Probe, QueryDef, ScenarioBuilder};
    let params =
        OverlayParams { nodes: 12, ..OverlayParams::planetlab(OverlayKind::SparseRandom, 13) };
    let topo = params.generate();
    // Fail the overlay's best-connected node (n11 carries dozens of transit
    // routes at convergence), so the recovery probe has paths to watch.
    let victim = n(11);
    let run = ScenarioBuilder::over(topo)
        .query(QueryDef::new(best_path()).from(n(0)))
        .fail(SimTime::from_secs(60), victim)
        .sample_every(SimDuration::from_secs(30))
        .until(SimTime::from_secs(150))
        .probe(Probe::Recovery)
        .execute()
        .unwrap();

    // Converged before the failure: the t=60 sample still sees every pair
    // (the failure is only detected 100 ms later).
    let at_60 = run.report.queries[0]
        .samples
        .iter()
        .find(|s| s.time == SimTime::from_secs(60))
        .expect("sampled at the failure instant");
    assert_eq!(at_60.results, 12 * 11);

    // All routes between live nodes exist and avoid the victim.
    let live_pairs = 11 * 10;
    let healed: Vec<RouteEntry> = run.handles[0]
        .finite_results(&run.harness)
        .unwrap()
        .into_iter()
        .filter(|r| r.src != victim && r.dst != victim)
        .collect();
    assert!(
        healed.len() >= live_pairs * 9 / 10,
        "expected most of {live_pairs} routes to survive, got {}",
        healed.len()
    );
    let through_victim = healed.iter().filter(|r| r.traverses(victim)).count();
    assert_eq!(through_victim, 0, "healed routes must avoid the failed node");
    // Costs stay finite and positive.
    for r in &healed {
        assert!(r.cost > Cost::ZERO && r.cost.is_finite());
    }
    // The probe saw the broken paths come back, measured per §9.1.
    assert!(!run.report.recoveries.is_empty(), "failing a node must break some routes");
    for rec in &run.report.recoveries {
        assert!(rec.recovery_s >= 0.0);
        assert_ne!(rec.src, victim);
        assert_ne!(rec.dst, victim);
    }
}
