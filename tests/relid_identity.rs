//! Tests for the interned relation-identity layer: intern→resolve
//! round-trips, deterministic cross-node id agreement (every node that
//! plans the same query derives the identical name↔id binding, including
//! when the query arrives via piggy-backed installation), and typed decode
//! failures on stale or unknown ids.

use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::engine::localize::localize;
use declarative_routing::engine::processor::NetMsg;
use declarative_routing::engine::QueryId;
use declarative_routing::netsim::{LinkParams, SimTime, Topology};
use declarative_routing::protocols::{best_path, dynamic_source_routing, link_state};
use declarative_routing::types::{Cost, Error, NodeId, RelCatalog, RelId, Tuple, Value};
use proptest::prelude::*;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn line_topology(k: usize) -> Topology {
    let mut t = Topology::new(k);
    for i in 0..k - 1 {
        t.add_bidirectional(
            n(i as u32),
            n(i as u32 + 1),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
        );
    }
    t
}

/// A relation-name strategy: nonempty identifier-shaped names, prefixed so
/// the test never collides with relations other tests intern.
fn rel_name() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,24}".prop_map(|s| format!("relid_pt_{s}"))
}

proptest! {
    /// Interning is idempotent and resolution round-trips the exact name.
    #[test]
    fn intern_resolve_round_trip(name in rel_name()) {
        let id = RelId::intern(&name);
        prop_assert_eq!(id.name(), name.as_str());
        prop_assert_eq!(RelId::intern(&name), id);
        prop_assert_eq!(RelId::lookup(&name), Some(id));
        // Tuples carry the same identity.
        let t = Tuple::new(&name, vec![Value::Int(1)]);
        prop_assert_eq!(t.rel(), id);
        prop_assert_eq!(t.relation(), name.as_str());
    }

    /// A catalog built from any name sequence decodes every bound tag back
    /// to the id it was minted for, and rejects every tag past the end.
    #[test]
    fn catalog_wire_tags_round_trip(names in prop::collection::vec(rel_name(), 1..12)) {
        let mut catalog = RelCatalog::new();
        let ids: Vec<RelId> = names.iter().map(|s| catalog.intern(s)).collect();
        for id in &ids {
            let tag = catalog.wire_tag(*id).expect("bound relation has a tag");
            prop_assert_eq!(catalog.decode(tag).unwrap(), *id);
        }
        let stale = catalog.len() as u32;
        prop_assert!(matches!(catalog.decode(stale), Err(Error::Decode(_))));
        // Rebuilding from the same sequence yields identical bindings.
        let mut again = RelCatalog::new();
        for s in &names {
            again.intern(s);
        }
        prop_assert_eq!(catalog.bindings(), again.bindings());
    }
}

/// Localizing the same program on different "nodes" (independent localize
/// calls, as every processor deployment performs at plan time) derives the
/// identical name↔id binding — the property that lets the wire format ship
/// bare ids without negotiation.
#[test]
fn independent_localizations_agree_on_bindings() {
    for program in [best_path(), dynamic_source_routing(), link_state()] {
        let a = localize(&program, &[]).expect("program localizes");
        let b = localize(&program, &[]).expect("program localizes");
        assert_eq!(
            a.rel_catalog.bindings(),
            b.rel_catalog.bindings(),
            "two plans of the same program disagree on relation bindings"
        );
        assert!(!a.rel_catalog.is_empty());
        // The binding covers everything the query can ship: result
        // relations and every ship-spec cache relation.
        for rel in &a.result_relations {
            assert!(a.rel_catalog.contains(*rel));
        }
        for ship in &a.ships {
            assert!(a.rel_catalog.contains(ship.source_relation));
            assert!(a.rel_catalog.contains(ship.cache_relation));
        }
    }
}

/// Two processors in one deployment install the same query — one through
/// the flooded `Install`, one through piggy-backed installation (§3.5:
/// tuples for a not-yet-known query arrive first) — and agree on every
/// relation binding, so tuples shipped between them decode identically.
#[test]
fn piggy_backed_install_derives_identical_bindings() {
    let mut harness = RoutingHarness::new(line_topology(3));
    let handle = harness.issue(best_path()).from(n(0)).submit().expect("query issues");
    let qid = handle.id();

    // Deliver a tuple batch for the (registered but not yet flooded-to-2)
    // query directly to the far node before any Install reaches it: the
    // processor must install the query on the fly.
    let link =
        Tuple::new("link", vec![Value::Node(n(2)), Value::Node(n(1)), Value::Cost(Cost::new(1.0))]);
    harness.sim_mut().inject(
        SimTime::ZERO,
        n(2),
        NetMsg::Tuples { qid, seq: None, items: vec![link], provs: Vec::new() },
    );
    harness.run_until(SimTime::from_secs(30));

    for i in 0..3u32 {
        assert!(
            harness.sim().app(n(i)).installed_queries().contains(&qid),
            "node {i} never installed the query"
        );
    }
    // All nodes run the identical spec, so their binding view is the
    // spec's; the piggy-backed node converged to the same routes, proving
    // the ids it decoded match the ids its peers encoded.
    let spec = harness.library().get(qid).expect("spec registered");
    let reference = localize(&best_path(), &[]).expect("localizes");
    assert_eq!(spec.program.rel_catalog.bindings(), reference.rel_catalog.bindings());
    let routes = handle.finite_results(&harness).expect("routes decode");
    assert_eq!(routes.len(), 6, "3-node line converges to all ordered pairs");
}

/// A shipped tuple whose relation id the query's catalog does not bind (a
/// stale id from an older query version, or garbage) is dropped and
/// counted, never stored into a phantom table.
#[test]
fn stale_relation_id_is_rejected_on_receive() {
    let mut harness = RoutingHarness::new(line_topology(2));
    let handle = harness.issue(best_path()).from(n(0)).submit().expect("query issues");
    let qid = handle.id();
    harness.run_until(SimTime::from_secs(10));
    assert_eq!(harness.processor_stats().tuples_rejected, 0);

    let bogus = Tuple::new(
        "relid_stale_never_in_any_program",
        vec![Value::Node(n(1)), Value::Node(n(0)), Value::Cost(Cost::new(1.0))],
    );
    harness.sim_mut().inject(
        SimTime::from_secs(10),
        n(1),
        NetMsg::Tuples { qid, seq: None, items: vec![bogus.clone()], provs: Vec::new() },
    );
    harness.run_until(SimTime::from_secs(20));

    let stats = harness.processor_stats();
    assert_eq!(stats.tuples_rejected, 1, "the stale-id tuple must be rejected");
    assert!(
        harness.sim().app(n(1)).tuples(qid, bogus.relation()).is_empty(),
        "rejected tuple must not be stored"
    );
    // The query itself keeps working.
    assert_eq!(handle.finite_results(&harness).expect("routes decode").len(), 2);
}

/// Tuples sent for an unknown query id install nothing and decode nothing
/// (the piggy-back path only fires for queries the library actually knows).
#[test]
fn tuples_for_unknown_query_are_ignored() {
    let mut harness = RoutingHarness::new(line_topology(2));
    let link =
        Tuple::new("link", vec![Value::Node(n(1)), Value::Node(n(0)), Value::Cost(Cost::new(1.0))]);
    let unknown: QueryId = 4242;
    harness.sim_mut().inject(
        SimTime::ZERO,
        n(1),
        NetMsg::Tuples { qid: unknown, seq: None, items: vec![link], provs: Vec::new() },
    );
    harness.run_to_quiescence();
    assert!(harness.sim().app(n(1)).installed_queries().is_empty());
}
