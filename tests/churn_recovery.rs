//! Churn-recovery regression tests for the §8 ∞-tombstone pruning.
//!
//! Before the pruning landed, failing a well-connected node of a dense
//! overlay made incremental maintenance enumerate exponentially many
//! infinite-cost tombstone paths (the PR 2 diagnosis: 16-node Dense-UUNET,
//! >3 min and >19 GB RSS). These tests pin the fixed behavior:
//!
//! * the hub-failure repro completes in seconds under a strict
//!   derived-tuple budget, and
//! * the post-failure routing state matches a from-scratch recomputation
//!   on the surviving topology (recovery converges to the right answer,
//!   not just *an* answer).

use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::engine::scenario::{Probe, QueryDef, ScenarioBuilder, ScenarioRun};
use declarative_routing::netsim::{LinkParams, SimDuration, SimTime, Topology};
use declarative_routing::protocols::best_path;
use declarative_routing::types::NodeId;
use declarative_routing::workloads::{OverlayKind, OverlayParams};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::collections::BTreeMap;
use std::time::Instant;

/// The PR 2 repro overlay: 16-node Dense-UUNET, seed 9.
fn repro_overlay() -> Topology {
    OverlayParams { nodes: 16, ..OverlayParams::planetlab(OverlayKind::DenseUunet, 9) }.generate()
}

/// The best-connected node other than the issuing node 0 — failing it used
/// to trigger the tombstone explosion.
fn hub_of(topo: &Topology) -> NodeId {
    topo.nodes()
        .filter(|n| *n != NodeId::new(0))
        .max_by_key(|&n| topo.degree(n))
        .expect("overlay has nodes")
}

/// Finite best-path costs per (src, dst), read from each surviving node's
/// own store, in integer milli-cost (exact for identical float sums).
fn cost_map(
    harness: &RoutingHarness,
    handle: &declarative_routing::engine::harness::QueryHandle,
    skip: Option<NodeId>,
    num_nodes: usize,
) -> BTreeMap<(NodeId, NodeId), u64> {
    let mut out = BTreeMap::new();
    for i in 0..num_nodes as u32 {
        let node = NodeId::new(i);
        if Some(node) == skip {
            continue;
        }
        for route in handle.results_at(harness, node).expect("routes decode") {
            if route.src != node || Some(route.dst) == skip || !route.cost.is_finite() {
                continue;
            }
            out.insert((route.src, route.dst), (route.cost.value() * 1000.0).round() as u64);
        }
    }
    out
}

#[test]
fn hub_failure_on_dense_overlay_is_one_invalidation_wave() {
    let wall = Instant::now();
    let topo = repro_overlay();
    let hub = hub_of(&topo);
    // One scenario: converge for 120 s, fail the hub, re-converge. The
    // processor-stats probe samples the deployment counters at both
    // boundaries (the failure at t=120 is only *detected* at t=120.1, so
    // the first sample still reads the convergence-phase counters).
    let run = ScenarioBuilder::over(topo)
        .query(QueryDef::new(best_path()))
        .fail(SimTime::from_secs(120), hub)
        .sample_every(SimDuration::from_secs(120))
        .until(SimTime::from_secs(240))
        .probes([Probe::ProcessorStats])
        .execute()
        .expect("churn scenario runs");
    let harness = &run.harness;
    let handle = &run.handles[0];
    let stats_at = |t: f64| {
        run.report
            .stats_series
            .iter()
            .find(|(at, _)| *at == t)
            .map(|(_, s)| s.clone())
            .expect("stats sampled")
    };
    let converged = stats_at(120.0);
    assert!(converged.tuples_derived > 0, "query never converged");

    let after = stats_at(240.0);
    let recovery_derived = after.tuples_derived - converged.tuples_derived;

    // The explosion derived (effectively) unboundedly many ∞ paths; the
    // invalidation wave must stay within a small multiple of the state
    // built during initial convergence.
    assert!(
        recovery_derived < 2 * converged.tuples_derived,
        "recovery derived {recovery_derived} tuples vs {} at convergence — \
         tombstone pruning regressed",
        converged.tuples_derived
    );
    assert!(
        after.tombstones_collapsed > 0,
        "hub failure on a dense overlay must exercise ∞-tombstone collapsing"
    );
    // Routes re-converge around the failed hub: node 0 still reaches every
    // other surviving node.
    let recovered = cost_map(harness, handle, Some(hub), 16);
    let from_zero = recovered.keys().filter(|(s, _)| *s == NodeId::new(0)).count();
    assert_eq!(from_zero, 14, "node 0 should reach all 14 surviving peers: {recovered:?}");
    // Loudly fail on a wall-clock regression (the broken engine ran >3 min
    // before being killed; the fixed one takes seconds even in debug).
    assert!(
        wall.elapsed().as_secs() < 120,
        "hub-failure repro took {:?} — incremental maintenance regressed",
        wall.elapsed()
    );
}

/// Regression for the ROADMAP follow-up: the per-query aggregate-selection
/// prune map must not grow monotonically under churn.
///
/// Deliberately stays on the low-level harness surface (not the scenario
/// API): it reads per-node `prune_entries` between hand-placed fail/join
/// cycles, which is processor-internal state no scenario probe exposes. Dead (destination,
/// next-hop) groups — routes whose recorded best was poisoned to ∞ — are
/// evicted once their invalidation wave has run, so repeating the same
/// fail+join cycle leaves the map at (or below) its size after the first
/// cycle instead of ratcheting up by one generation of tombstone groups per
/// cycle.
#[test]
fn prune_map_does_not_grow_monotonically_across_churn_cycles() {
    let topo = repro_overlay();
    let hub = hub_of(&topo);
    let mut harness = RoutingHarness::new(topo);
    let handle = harness.issue(best_path()).submit().expect("query localizes");
    let qid = handle.id();

    harness.run_until(SimTime::from_secs(120));
    let total_entries =
        |h: &RoutingHarness| -> usize { h.sim().apps().map(|a| a.prune_entries(qid)).sum() };
    let at_convergence = total_entries(&harness);
    assert!(at_convergence > 0, "converged deployment should hold prune state");

    // Three identical fail+join cycles of the hub. The simulation is
    // deterministic, so every cycle does the same work; only a leak can
    // make later cycles end with more retained prune state than the first.
    let mut after_cycle = Vec::new();
    let mut t = 120u64;
    for _ in 0..3 {
        harness.sim_mut().schedule_node_fail(SimTime::from_secs(t), hub);
        harness.run_until(SimTime::from_secs(t + 60));
        harness.sim_mut().schedule_node_join(SimTime::from_secs(t + 60), hub);
        harness.run_until(SimTime::from_secs(t + 120));
        t += 120;
        after_cycle.push(total_entries(&harness));
    }

    let stats = harness.processor_stats();
    assert!(stats.prune_evicted > 0, "churn cycles must exercise prune-map eviction: {stats:?}");
    assert!(
        after_cycle[1] <= after_cycle[0] && after_cycle[2] <= after_cycle[0],
        "prune map ratchets across identical churn cycles: {after_cycle:?} \
         (entries at convergence: {at_convergence})"
    );
    // Routes still heal after the final rejoin (bounding must not change
    // recovery semantics).
    let recovered = cost_map(&harness, &handle, None, 16);
    let from_zero = recovered.keys().filter(|(s, _)| *s == NodeId::new(0)).count();
    assert_eq!(from_zero, 15, "node 0 should reach every peer after rejoin");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Post-failure forwarding state with tombstone pruning matches a
    /// from-scratch recomputation on the surviving topology.
    #[test]
    fn recovery_matches_from_scratch_recomputation(nodes in 10usize..13, seed in 0u64..500) {
        let params = OverlayParams { nodes, ..OverlayParams::planetlab(OverlayKind::DenseUunet, seed) };
        let topo = params.generate();
        let victim = hub_of(&topo);

        // Incremental: converge, fail the victim, re-converge — one
        // declarative scenario (no probes needed; the assertions read the
        // finished deployment through the returned harness + handle).
        let inc: ScenarioRun = ScenarioBuilder::over(topo.clone())
            .query(QueryDef::new(best_path()))
            .fail(SimTime::from_secs(120), victim)
            .probes([])
            .sample_every(SimDuration::from_secs(130))
            .until(SimTime::from_secs(260))
            .execute()
            .expect("incremental scenario runs");
        let recovered = cost_map(&inc.harness, &inc.handles[0], Some(victim), nodes);

        // Reference: the surviving topology (victim isolated), from scratch.
        let mut surviving = Topology::new(nodes);
        for (a, b, params) in topo.all_links() {
            if a != victim && b != victim {
                surviving.add_link(a, b, LinkParams { ..*params });
            }
        }
        let scratch: ScenarioRun = ScenarioBuilder::over(surviving)
            .query(QueryDef::new(best_path()))
            .probes([])
            .sample_every(SimDuration::from_secs(120))
            .until(SimTime::from_secs(120))
            .execute()
            .expect("reference scenario runs");
        let reference = cost_map(&scratch.harness, &scratch.handles[0], Some(victim), nodes);

        prop_assert!(!reference.is_empty(), "reference run computed no routes");
        for (pair, ref_cost) in &reference {
            match recovered.get(pair) {
                Some(cost) => prop_assert_eq!(
                    cost, ref_cost,
                    "pair {:?}: incremental recovery found cost {} but from-scratch says {}",
                    pair, cost, ref_cost
                ),
                None => prop_assert!(false, "pair {:?} lost during recovery", pair),
            }
        }
        for pair in recovered.keys() {
            prop_assert!(
                reference.contains_key(pair),
                "pair {:?} survives incrementally but is unreachable from scratch",
                pair
            );
        }
    }
}
