//! Property tests for the provenance subsystem: every explanation of a
//! finite route is a well-formed derivation tree — its leaves are live
//! base facts, its internal edges re-validate by re-firing the named rule
//! on exactly the recorded body tuples — and the explained route matches
//! an independent from-scratch centralized re-derivation over the same
//! link set. A second property pins loss-invariance: on unique-best-path
//! topologies the proof tree resolves identically with and without an
//! adversarial [`FaultPlan`], and explain stays typed (never wedges) on
//! torn-down queries even under loss.

use std::collections::{BTreeMap, BTreeSet};

use declarative_routing::datalog::eval::{apply_aggregate, evaluate_rule};
use declarative_routing::datalog::{parse_program, Builtins, Database, Evaluator};
use declarative_routing::engine::processor::ReliabilityConfig;
use declarative_routing::engine::{DerivationTree, ExplainError, RoutingHarness};
use declarative_routing::netsim::{FaultPlan, LinkFaults, LinkParams, SimTime, Topology};
use declarative_routing::types::{Cost, NodeId, Tuple, Value};
use proptest::prelude::*;

const BEST_PATH: &str = r#"
    #key(link, 0, 1).
    #key(path, 0, 1, 2).
    #key(bestPathCost, 0, 1).
    #key(bestPath, 0, 1).
    NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).
    NR2: path(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2),
         C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
    NR3: path(@S,D,P,C) :- link(@S,W,C1), path(@S,D,P,C2),
         f_inPath(P,W) = true, C1 = infinity, C = infinity.
    BPR1: bestPathCost(@S,D,min<C>) :- path(@S,D,P,C).
    BPR2: bestPath(@S,D,P,C) :- bestPathCost(@S,D,C), path(@S,D,P,C).
    Query: bestPath(@S,D,P,C).
"#;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// A random small connected undirected graph as deduplicated `(a, b, cost)`
/// edges: a spanning chain over `n` nodes plus a few extra chords.
fn graph() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    (3usize..6, prop::collection::vec((0u32..6, 0u32..6, 1u32..9u32), 0..5)).prop_map(
        |(nodes, extra)| {
            let mut edges: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for i in 0..(nodes as u32 - 1) {
                edges.insert((i, i + 1), 1.0 + f64::from(i));
            }
            for (a, b, c) in extra {
                let (a, b) = (a % nodes as u32, b % nodes as u32);
                if a != b {
                    edges.insert((a.min(b), a.max(b)), f64::from(c));
                }
            }
            edges.into_iter().map(|((a, b), c)| (a, b, c)).collect()
        },
    )
}

fn topology_of(edges: &[(u32, u32, f64)]) -> Topology {
    let nodes = edges.iter().flat_map(|&(a, b, _)| [a, b]).max().unwrap_or(0) as usize + 1;
    let mut t = Topology::new(nodes);
    for &(a, b, c) in edges {
        t.add_bidirectional(n(a), n(b), LinkParams::with_latency_ms(10.0).with_cost(Cost::new(c)));
    }
    t
}

fn line(k: usize) -> Topology {
    let mut t = Topology::new(k);
    for i in 0..k - 1 {
        t.add_bidirectional(
            n(i as u32),
            n(i as u32 + 1),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
        );
    }
    t
}

fn finite(t: &Tuple) -> bool {
    t.field(3).and_then(Value::as_cost).is_some_and(|c| c.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tentpole invariant: on random graphs, every node's most expensive
    /// (deepest-proof) route explains to a tree whose root is the route,
    /// whose leaves are live base link facts matching the topology, and
    /// whose every internal edge re-validates — re-firing the named
    /// localized rule on a database holding exactly the recorded body
    /// tuples re-derives the head. The distributed result set itself
    /// matches an independent centralized evaluation of the same program
    /// over the same links.
    #[test]
    fn explained_routes_are_well_formed_and_match_rederivation(edges in graph()) {
        let topology = topology_of(&edges);
        let num_nodes = topology.num_nodes();
        let mut harness = RoutingHarness::new(topology);
        let handle =
            harness.issue(parse_program(BEST_PATH).unwrap()).provenance(true).submit().unwrap();
        harness.run_until(SimTime::from_secs(60));
        let qid = handle.id();

        // Independent from-scratch re-derivation: the centralized
        // evaluator over the full link set, sharing no state with the
        // distributed run.
        let mut central = Database::new();
        central.declare_key("link", vec![0, 1]);
        for &(a, b, c) in &edges {
            for (s, d) in [(a, b), (b, a)] {
                central.insert(Tuple::new(
                    "link",
                    vec![Value::Node(n(s)), Value::Node(n(d)), Value::Cost(Cost::new(c))],
                ));
            }
        }
        Evaluator::new(parse_program(BEST_PATH).unwrap()).unwrap().run(&mut central).unwrap();
        let central_best: BTreeSet<Tuple> =
            central.tuples("bestPath").into_iter().filter(finite).collect();

        let localized =
            harness.library().get(qid).expect("spec registered").program.clone();
        let builtins = Builtins::standard();
        let costs: BTreeMap<(u32, u32), f64> = edges
            .iter()
            .flat_map(|&(a, b, c)| [((a, b), c), ((b, a), c)])
            .collect();

        // Edge check: look the rule up by the label the tree reports and
        // re-fire it on exactly the body tuples. Aggregate heads group the
        // raw derivations exactly as the engine does.
        let check_edge = |label: &str, _node: NodeId, body: &[Tuple], head: &Tuple| -> bool {
            let Some(rule) = localized.rules.iter().enumerate().find_map(|(i, lr)| {
                (lr.rule.name.as_deref() == Some(label) || format!("rule{i}") == label)
                    .then_some(&lr.rule)
            }) else {
                return false;
            };
            let mut db = Database::new();
            for t in body {
                db.insert(t.clone());
            }
            let Ok(raw) = evaluate_rule(rule, &builtins, &db, None) else { return false };
            if rule.head.has_aggregate() {
                apply_aggregate(&rule.head, head.rel(), &raw)
                    .is_ok_and(|grouped| grouped.contains(head))
            } else {
                raw.contains(head)
            }
        };
        // Base check: a leaf is a link fact (or its shipped cache copy,
        // which aliases the same base fact) whose cost matches the
        // topology's live edge.
        let check_base = |t: &Tuple| -> bool {
            t.relation().starts_with("link")
                && t.arity() == 3
                && matches!(
                    (t.field(0), t.field(1), t.field(2).and_then(Value::as_cost)),
                    (Some(Value::Node(s)), Some(Value::Node(d)), Some(c))
                        if costs.get(&(s.raw(), d.raw())) == Some(&c.value())
                )
        };

        let mut explained = 0usize;
        for i in 0..num_nodes {
            let routes: Vec<Tuple> = harness
                .sim()
                .app(n(i as u32))
                .tuples(qid, "bestPath")
                .into_iter()
                .filter(finite)
                .collect();
            // The whole result set agrees with the centralized fixpoint.
            for route in &routes {
                prop_assert!(
                    central_best.contains(route),
                    "node {i}: {route:?} not in the centralized re-derivation"
                );
            }
            // Explain the most expensive route this node holds — the one
            // with the deepest proof.
            let Some(route) = routes.into_iter().max_by(|a, b| {
                let cost = |t: &Tuple| t.field(3).and_then(Value::as_cost).unwrap();
                cost(a).partial_cmp(&cost(b)).unwrap()
            }) else {
                continue;
            };
            let tree = harness.explain(qid, &route).expect("live route must explain");
            explained += 1;
            prop_assert_eq!(tree.tuple(), &route);
            prop_assert!(tree.is_fully_resolved(), "unresolved proof:\n{}", tree);
            if let Err(why) = tree.validate(&check_edge, &check_base) {
                prop_assert!(false, "node {}: invalid proof: {}\n{}", i, why, tree);
            }
        }
        // Guard against vacuous passes: a connected graph derives routes
        // at every node, and each node explained one.
        prop_assert_eq!(explained, num_nodes);
    }

    /// Loss-invariance (chaos): on a line topology the best path — and its
    /// whole derivation — is unique, so the proof tree resolved under an
    /// adversarial fault plan (with the loss-tolerant transport) is
    /// step-identical to the lossless one. Afterwards explain degrades to
    /// typed errors, never a wedge: torn-down queries answer `TornDown`,
    /// unknown ids answer `UnknownQuery`, even under continuing loss.
    #[test]
    fn explanations_are_loss_invariant_on_unique_path_lines(k in 3usize..6, seed in 0u64..1000) {
        let run = |faulty: bool| -> (Tuple, DerivationTree) {
            let mut harness = if faulty {
                RoutingHarness::with_reliability(line(k), ReliabilityConfig::default())
            } else {
                RoutingHarness::new(line(k))
            };
            if faulty {
                harness.set_fault_plan(FaultPlan::new(seed).uniform(
                    LinkFaults::none().with_drop(0.05).with_duplicate(0.10),
                ));
            }
            let handle = harness
                .issue(parse_program(BEST_PATH).unwrap())
                .provenance(true)
                .submit()
                .unwrap();
            harness.run_until(SimTime::from_secs(90));
            let qid = handle.id();
            let route = harness
                .sim()
                .app(n(0))
                .tuples(qid, "bestPath")
                .into_iter()
                .find(|t| t.field(1) == Some(&Value::Node(n(k as u32 - 1))) && finite(t))
                .expect("end-to-end route derived");
            let tree = harness.explain(qid, &route).expect("route must explain");

            // Typed failure modes stay typed under the same fault plan.
            prop_assert_eq!(harness.explain(qid + 999, &route), Err(ExplainError::UnknownQuery));
            let now = harness.now();
            harness.teardown(qid, now);
            harness.run_to_quiescence();
            prop_assert_eq!(harness.explain(qid, &route), Err(ExplainError::TornDown));
            (route, tree)
        };

        let (clean_route, clean_tree) = run(false);
        let (lossy_route, lossy_tree) = run(true);
        prop_assert_eq!(&clean_route, &lossy_route, "same unique best path either way");
        prop_assert!(lossy_tree.is_fully_resolved(), "lossy proof unresolved:\n{}", lossy_tree);
        prop_assert_eq!(
            clean_tree.steps(),
            lossy_tree.steps(),
            "clean:\n{}\nlossy:\n{}",
            clean_tree,
            lossy_tree
        );
    }
}
