//! Scenario-API determinism: the same builder with the same seeds must
//! reproduce the same `ScenarioReport`, byte for byte — events, samples,
//! and recovery times included. This is the property the figure binaries
//! rely on when their CSVs are diffed across machines and runs.

use declarative_routing::engine::scenario::{Probe, QueryDef, ScenarioBuilder, ScenarioReport};
use declarative_routing::netsim::{SimDuration, SimTime};
use declarative_routing::protocols::best_path;
use declarative_routing::workloads::{
    ChurnSchedule, LinkJitterSchedule, OverlayKind, OverlayParams,
};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

/// One churn + link-jitter scenario over a dense overlay, fully seeded.
fn seeded_scenario(nodes: usize, seed: u64) -> ScenarioBuilder {
    let params = OverlayParams { nodes, ..OverlayParams::planetlab(OverlayKind::DenseUunet, seed) };
    let topology = params.generate();
    let warmup = SimTime::from_secs(40);
    let churn = ChurnSchedule::alternating(
        nodes,
        0.2,
        warmup,
        SimDuration::from_secs(20),
        1,
        seed ^ 0xc0de,
    );
    let jitter =
        LinkJitterSchedule::new(warmup, SimDuration::from_secs(10), 3, 0.05, seed ^ 0x7177);
    ScenarioBuilder::over(topology)
        .query(QueryDef::new(best_path()).named("determinism"))
        .source(&churn)
        .source(&jitter)
        .sample_from(warmup)
        .sample_every(SimDuration::from_secs(5))
        .until(churn.end_time() + SimDuration::from_secs(20))
        .probes([
            Probe::ResultSets,
            Probe::PathRtt,
            Probe::LinkRtt,
            Probe::Recovery,
            Probe::PathChanges,
            Probe::OverheadSeries,
            Probe::Bandwidth,
            Probe::ProcessorStats,
        ])
}

fn run_seeded(nodes: usize, seed: u64) -> ScenarioReport {
    seeded_scenario(nodes, seed).run().expect("seeded scenario runs")
}

#[test]
fn identical_builders_reproduce_identical_reports() {
    let a = run_seeded(10, 7);
    let b = run_seeded(10, 7);
    assert_eq!(a, b, "same builder + same seed must reproduce the same report");
    // Byte-identical, not merely PartialEq: the Debug rendering is the
    // strictest cross-representation check available without serde.
    assert_eq!(format!("{a:?}").into_bytes(), format!("{b:?}").into_bytes());
    // And the run actually exercised every probe.
    assert!(!a.events.is_empty());
    assert!(!a.queries[0].samples.is_empty());
    assert!(!a.path_rtt.is_empty());
    assert!(!a.link_rtt.is_empty());
    assert!(!a.overhead_series.is_empty());
    assert!(!a.bandwidth.is_empty());
    assert!(!a.stats_series.is_empty());
    assert!(a.path_changes.is_some());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Determinism holds across overlay sizes and seeds (events, samples,
    /// and recovery times all byte-identical across two runs).
    #[test]
    fn scenario_reports_are_deterministic(nodes in 8usize..12, seed in 0u64..500) {
        let a = run_seeded(nodes, seed);
        let b = run_seeded(nodes, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(format!("{:?}", a).into_bytes(), format!("{:?}", b).into_bytes());
        // Different seeds change the timeline (sanity check that the
        // comparison is not vacuous).
        let c = run_seeded(nodes, seed + 1);
        prop_assert!(
            a.events != c.events || a.queries != c.queries,
            "different seeds should produce different runs"
        );
    }
}
