//! Chaos tests for the loss-tolerant transport (PR 8).
//!
//! The netsim wire can now drop, duplicate, and reorder messages under a
//! seeded [`FaultPlan`]; the processors compensate with sequence-numbered
//! batches, cumulative acks, and capped-backoff retransmission. These tests
//! pin the contract from both ends:
//!
//! * **exactness under storms** — with loss up to 20% plus duplication and
//!   reordering, a dense-overlay churn run converges to *exactly* the
//!   routes a lossless from-scratch recomputation finds (the
//!   `tests/churn_recovery.rs` oracle, now with a hostile wire), and
//! * **idempotence of control traffic** — duplicate or reordered
//!   `Install` / `CacheInstall` / `Teardown` deliveries leave result
//!   multisets and the deployment's [`StateFootprint`] unchanged, and a
//!   node that missed the `Install` flood repairs itself by requesting the
//!   query from whoever ships it tuples.

use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::engine::processor::{NetMsg, ReliabilityConfig};
use declarative_routing::engine::scenario::{QueryDef, ScenarioBuilder, ScenarioRun};
use declarative_routing::netsim::{
    FaultPlan, LinkFaults, LinkParams, SimDuration, SimTime, Topology,
};
use declarative_routing::protocols::best_path;
use declarative_routing::types::{Cost, NodeId};
use declarative_routing::workloads::{OverlayKind, OverlayParams};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::collections::BTreeMap;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// A line 0 - 1 - ... - k-1 with unit costs.
fn line(k: usize) -> Topology {
    let mut t = Topology::new(k);
    for i in 0..k - 1 {
        t.add_bidirectional(
            n(i as u32),
            n(i as u32 + 1),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
        );
    }
    t
}

/// The best-connected node other than the issuing node 0.
fn hub_of(topo: &Topology) -> NodeId {
    topo.nodes()
        .filter(|nd| *nd != n(0))
        .max_by_key(|&nd| topo.degree(nd))
        .expect("overlay has nodes")
}

/// Finite best-path costs per (src, dst), read from each surviving node's
/// own store, in integer milli-cost (exact for identical float sums).
fn cost_map(
    harness: &RoutingHarness,
    handle: &declarative_routing::engine::harness::QueryHandle,
    skip: Option<NodeId>,
    num_nodes: usize,
) -> BTreeMap<(NodeId, NodeId), u64> {
    let mut out = BTreeMap::new();
    for i in 0..num_nodes as u32 {
        let node = n(i);
        if Some(node) == skip {
            continue;
        }
        for route in handle.results_at(harness, node).expect("routes decode") {
            if route.src != node || Some(route.dst) == skip || !route.cost.is_finite() {
                continue;
            }
            out.insert((route.src, route.dst), (route.cost.value() * 1000.0).round() as u64);
        }
    }
    out
}

/// A hostile wire: `loss` drop probability plus duplication and reordering
/// on every directed link.
fn storm(seed: u64, loss: f64) -> FaultPlan {
    FaultPlan::new(seed).uniform(
        LinkFaults::none()
            .with_drop(loss)
            .with_duplicate(0.10)
            .with_reorder(0.10, SimDuration::from_millis(25)),
    )
}

// ---------------------------------------------------------------------------
// Deterministic transport behavior
// ---------------------------------------------------------------------------

/// A lossy line still computes every pair, and the transport visibly works
/// for it: batches are retransmitted and acknowledged.
#[test]
fn lossy_line_converges_exactly_with_retransmissions() {
    let k = 5;
    let run = ScenarioBuilder::over(line(k))
        .query(QueryDef::new(best_path()))
        .faults(storm(42, 0.15))
        .sample_every(SimDuration::from_secs(2))
        .until(SimTime::from_secs(60))
        .execute()
        .expect("lossy scenario runs");
    assert_eq!(run.report.queries[0].final_results(), k * (k - 1), "all pairs despite 15% loss");

    let reference = ScenarioBuilder::over(line(k))
        .query(QueryDef::new(best_path()))
        .sample_every(SimDuration::from_secs(2))
        .until(SimTime::from_secs(60))
        .execute()
        .expect("lossless scenario runs");
    assert_eq!(
        cost_map(&run.harness, &run.handles[0], None, k),
        cost_map(&reference.harness, &reference.handles[0], None, k),
        "lossy run must converge to the lossless routes"
    );

    let stats = run.harness.processor_stats();
    assert!(stats.retransmits > 0, "15% loss must force retransmissions: {stats:?}");
    assert!(stats.acks_sent > 0, "sequenced batches must be acknowledged: {stats:?}");
    assert!(
        run.harness.sim().metrics().dropped_fault() > 0,
        "the fault plan must actually have dropped messages"
    );
}

/// The reliable transport on a clean wire never retransmits and never sees
/// a duplicate — the ack machinery runs, nothing else.
#[test]
fn reliable_transport_is_quiet_on_a_clean_wire() {
    let run = ScenarioBuilder::over(line(4))
        .query(QueryDef::new(best_path()))
        .reliability(ReliabilityConfig::default())
        .until(SimTime::from_secs(40))
        .execute()
        .expect("clean reliable scenario runs");
    assert_eq!(run.report.queries[0].final_results(), 12);
    let stats = run.harness.processor_stats();
    assert_eq!(stats.retransmits, 0, "no loss, no retransmits: {stats:?}");
    assert_eq!(stats.dups_dropped, 0, "no duplication, no dropped dups: {stats:?}");
    assert!(stats.acks_sent > 0, "sequenced batches are still acknowledged");
}

/// An all-zero fault plan is behaviorally inert: the report is identical,
/// field for field, to a run that never installed a plan (both with the
/// reliable transport, so the wire accounting matches).
#[test]
fn inert_fault_plan_changes_nothing() {
    let build = || {
        ScenarioBuilder::over(line(4))
            .query(QueryDef::new(best_path()))
            .reliability(ReliabilityConfig::default())
            .sample_every(SimDuration::from_secs(1))
            .until(SimTime::from_secs(30))
    };
    let with_inert_plan = build().faults(FaultPlan::new(7)).run().expect("inert-plan run");
    let without_plan = build().run().expect("plain run");
    assert_eq!(with_inert_plan, without_plan);
}

// ---------------------------------------------------------------------------
// Control-message idempotence (duplicate / reordered Install, CacheInstall,
// Teardown)
// ---------------------------------------------------------------------------

/// Re-delivering the `Install` flood to every node of a converged
/// deployment changes neither the result multiset nor the state footprint.
#[test]
fn duplicate_install_flood_is_idempotent() {
    let k = 4;
    let clean = ScenarioBuilder::over(line(k))
        .query(QueryDef::new(best_path()))
        .until(SimTime::from_secs(40))
        .execute()
        .expect("clean run");

    let mut harness = RoutingHarness::new(line(k));
    let handle = harness.issue(best_path()).submit().expect("query localizes");
    let qid = handle.id();
    harness.run_until(SimTime::from_secs(20));
    for i in 0..k as u32 {
        harness.sim_mut().inject(SimTime::from_secs(20), n(i), NetMsg::Install { qid });
    }
    harness.run_until(SimTime::from_secs(40));

    assert_eq!(
        cost_map(&harness, &handle, None, k),
        cost_map(&clean.harness, &clean.handles[0], None, k),
        "duplicate Install must not change the computed routes"
    );
    assert_eq!(
        harness.state_footprint(),
        clean.harness.state_footprint(),
        "duplicate Install must not change the deployment's state footprint"
    );
}

/// A duplicated `Teardown` flood (every node handles it at least twice) is
/// a no-op after the first: the footprint stays fully unwound and the
/// query does not resurrect.
#[test]
fn duplicate_teardown_is_idempotent() {
    let k = 4;
    let mut harness = RoutingHarness::new(line(k));
    let handle = harness.issue(best_path()).submit().expect("query localizes");
    let qid = handle.id();
    harness.run_until(SimTime::from_secs(20));

    harness.teardown(qid, SimTime::from_secs(20));
    harness.run_until(SimTime::from_secs(30));
    let unwound = harness.state_footprint();
    assert_eq!(unwound.instances, 0, "teardown must unwind every instance: {unwound:?}");
    assert_eq!(unwound.stored_tuples, 0, "teardown must drop stored tuples: {unwound:?}");

    // Second flood, from the far end this time, plus direct duplicates at
    // every node (a reordered late copy of the first flood).
    harness.teardown_from(qid, n(k as u32 - 1), SimTime::from_secs(30));
    for i in 0..k as u32 {
        harness.sim_mut().inject(SimTime::from_secs(31), n(i), NetMsg::Teardown { qid });
    }
    harness.run_until(SimTime::from_secs(40));
    assert_eq!(harness.state_footprint(), unwound, "duplicate teardown must be a no-op");
    assert!(harness.library().get(qid).is_none(), "the spec stays retired");
}

/// A wire that duplicates *every* message and reorders aggressively — so
/// every `Install`, `CacheInstall`, `Tuples`, `Ack`, and `Teardown` is
/// delivered at least twice, many out of order — still produces exactly
/// the clean run's results and footprint. Sharing is enabled so the
/// `CacheInstall` path is exercised, and the query is torn down at the end
/// so `Teardown` duplication is too.
#[test]
fn duplicating_reordering_wire_preserves_results_and_footprint() {
    let duplicate_everything = FaultPlan::new(3).uniform(
        LinkFaults::none().with_duplicate(1.0).with_reorder(0.5, SimDuration::from_millis(40)),
    );
    let run_one = |plan: Option<FaultPlan>| -> ScenarioRun {
        let mut builder = ScenarioBuilder::over(line(4))
            .query(QueryDef::new(best_path()).sharing(true))
            .reliability(ReliabilityConfig::default())
            .until(SimTime::from_secs(40));
        if let Some(plan) = plan {
            builder = builder.faults(plan);
        }
        builder.execute().expect("sharing scenario runs")
    };
    let clean = run_one(None);
    let stormy = run_one(Some(duplicate_everything));

    assert_eq!(
        cost_map(&stormy.harness, &stormy.handles[0], None, 4),
        cost_map(&clean.harness, &clean.handles[0], None, 4),
        "duplicated control traffic must not change the routes"
    );
    assert_eq!(
        stormy.harness.state_footprint(),
        clean.harness.state_footprint(),
        "duplicated CacheInstall/Install must not inflate the footprint"
    );
    let stats = stormy.harness.processor_stats();
    assert!(stats.dups_dropped > 0, "duplicate batches must be suppressed: {stats:?}");

    // Tear down under the same storm: duplicated Teardown floods must still
    // unwind everything exactly once.
    let mut stormy = stormy;
    let qid = stormy.handles[0].id();
    stormy.harness.teardown(qid, stormy.harness.now());
    stormy.harness.run_to_quiescence();
    let footprint = stormy.harness.state_footprint();
    assert_eq!(footprint.instances, 0, "teardown under duplication: {footprint:?}");
    assert_eq!(footprint.stored_tuples, 0, "teardown under duplication: {footprint:?}");
    assert_eq!(footprint.shared_tuples, 0, "cache must drain with its last user: {footprint:?}");
}

// ---------------------------------------------------------------------------
// Missed-install repair (QueryRequest)
// ---------------------------------------------------------------------------

/// A node that never saw the `Install` flood — it was down when the query
/// was issued, and the shared library lost the spec before it rejoined —
/// repairs itself: the first sequenced tuples for the unknown query make
/// it ask the sender, which restores the spec from its own instance and
/// re-offers the installation.
#[test]
fn missed_install_is_repaired_via_query_request() {
    let k = 4;
    let victim = n(3);
    let mut harness = RoutingHarness::with_reliability(line(k), ReliabilityConfig::default());
    harness.sim_mut().schedule_node_fail(SimTime::from_millis(1), victim);
    let handle =
        harness.issue(best_path()).at(SimTime::from_secs(5)).submit().expect("query localizes");
    let qid = handle.id();
    harness.run_until(SimTime::from_secs(30));
    assert!(
        harness.sim().app(victim).installed_queries().is_empty(),
        "the victim was down during dissemination and must not hold the query"
    );

    // Simulate a deployment where the spec is no longer in the (shared)
    // library by the time the victim rejoins: without the repair the
    // piggy-backed installation on first tuple receipt would fail and the
    // victim would stay route-less forever.
    harness.library().remove(qid).expect("spec was registered");
    harness.sim_mut().schedule_node_join(SimTime::from_secs(30), victim);
    harness.run_until(SimTime::from_secs(90));

    assert!(
        harness.sim().app(victim).installed_queries().contains(&qid),
        "the rejoined node must have installed the query via QueryRequest"
    );
    assert!(
        harness.library().get(qid).is_some(),
        "answering a QueryRequest restores the spec into the library"
    );
    // And the repaired node computes the same routes as everyone else: the
    // full line converges to the from-scratch result.
    let scratch = ScenarioBuilder::over(line(k))
        .query(QueryDef::new(best_path()))
        .until(SimTime::from_secs(60))
        .execute()
        .expect("reference run");
    assert_eq!(
        cost_map(&harness, &handle, None, k),
        cost_map(&scratch.harness, &scratch.handles[0], None, k),
        "the repaired deployment must match a from-scratch run"
    );
}

// ---------------------------------------------------------------------------
// Chaos proptest: storms over churn vs from-scratch recomputation
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Under a randomized loss/duplication/reordering storm (loss up to
    /// 20%), failing the hub of a dense overlay and re-converging yields
    /// *exactly* the routes a lossless from-scratch recomputation on the
    /// surviving topology finds — the transport makes the hostile wire
    /// invisible to the fixpoint.
    #[test]
    fn chaos_storm_recovery_matches_from_scratch(nodes in 10usize..13, seed in 0u64..500) {
        let params =
            OverlayParams { nodes, ..OverlayParams::planetlab(OverlayKind::DenseUunet, seed) };
        let topo = params.generate();
        let victim = hub_of(&topo);
        let loss = 0.05 + (seed % 4) as f64 * 0.05; // 5%..20%

        let chaotic: ScenarioRun = ScenarioBuilder::over(topo.clone())
            .query(QueryDef::new(best_path()))
            .faults(storm(seed.wrapping_mul(0x9e37_79b9), loss))
            .fail(SimTime::from_secs(120), victim)
            .probes([])
            .sample_every(SimDuration::from_secs(130))
            .until(SimTime::from_secs(260))
            .execute()
            .expect("chaotic scenario runs");
        let recovered = cost_map(&chaotic.harness, &chaotic.handles[0], Some(victim), nodes);

        // Reference: the surviving topology (victim isolated), from
        // scratch, on a perfect wire.
        let mut surviving = Topology::new(nodes);
        for (a, b, params) in topo.all_links() {
            if a != victim && b != victim {
                surviving.add_link(a, b, LinkParams { ..*params });
            }
        }
        let scratch: ScenarioRun = ScenarioBuilder::over(surviving)
            .query(QueryDef::new(best_path()))
            .probes([])
            .sample_every(SimDuration::from_secs(120))
            .until(SimTime::from_secs(120))
            .execute()
            .expect("reference scenario runs");
        let reference = cost_map(&scratch.harness, &scratch.handles[0], Some(victim), nodes);

        prop_assert!(!reference.is_empty(), "reference run computed no routes");
        let stats = chaotic.harness.processor_stats();
        prop_assert!(
            chaotic.harness.sim().metrics().dropped_fault() > 0,
            "the storm must actually drop messages (loss {})", loss
        );
        prop_assert!(stats.retransmits > 0, "loss must force retransmissions: {:?}", stats);
        for (pair, ref_cost) in &reference {
            match recovered.get(pair) {
                Some(cost) => prop_assert_eq!(
                    cost, ref_cost,
                    "pair {:?}: chaotic recovery found cost {} but the lossless oracle says {}",
                    pair, cost, ref_cost
                ),
                None => prop_assert!(false, "pair {:?} lost under the storm", pair),
            }
        }
        for pair in recovered.keys() {
            prop_assert!(
                reference.contains_key(pair),
                "pair {:?} exists under the storm but is unreachable from scratch",
                pair
            );
        }
    }
}
