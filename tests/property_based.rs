//! Property-based tests (proptest) over the core data structures and
//! invariants: path-vector algebra, cost arithmetic, the typed-view
//! (`FromTuple`) round-trip, the parser round-trip, the equivalence of naïve
//! and semi-naïve evaluation, the equivalence of compiled (frame-based) and
//! reference (name-keyed) rule evaluation, the left/right recursion rewrite,
//! and the aggregate-selections optimization.

use declarative_routing::datalog::eval::EvalConfig;
use declarative_routing::datalog::rewrite::flip_program_recursion;
use declarative_routing::datalog::{parse_program, Database, Evaluator};
use declarative_routing::protocols::{best_path, network_reachability};
use declarative_routing::types::{
    Cost, CostEntry, Error, FromTuple, NodeId, PathVector, RouteEntry, Tuple, Value,
};
use proptest::prelude::*;

fn node_vec() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(0u32..20, 0..8).prop_map(|v| v.into_iter().map(NodeId::new).collect())
}

/// A random small undirected graph: list of (a, b, cost) edges over ≤ 8
/// nodes, always including a spanning chain so it is connected.
fn small_graph() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    (2usize..6, prop::collection::vec((0u32..6, 0u32..6, 1u32..10u32), 0..6)).prop_map(
        |(n, extra)| {
            let mut edges = Vec::new();
            for i in 0..(n as u32 - 1) {
                edges.push((i, i + 1, 1.0 + i as f64));
            }
            for (a, b, c) in extra {
                let (a, b) = (a % n as u32, b % n as u32);
                if a != b {
                    edges.push((a, b, c as f64));
                }
            }
            edges
        },
    )
}

fn link_db(edges: &[(u32, u32, f64)]) -> Database {
    let mut db = Database::new();
    db.declare_key("link", vec![0, 1]);
    for &(a, b, c) in edges {
        for (s, d) in [(a, b), (b, a)] {
            db.insert(Tuple::new(
                "link",
                vec![Value::Node(NodeId::new(s)), Value::Node(NodeId::new(d)), Value::from(c)],
            ));
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Prepending then taking the tail returns the original path; length and
    /// membership behave like the list they model.
    #[test]
    fn path_vector_prepend_tail_roundtrip(nodes in node_vec(), extra in 0u32..20) {
        let p = PathVector::from_nodes(nodes.clone());
        let extra = NodeId::new(extra);
        let grown = p.prepend(extra);
        prop_assert_eq!(grown.len(), p.len() + 1);
        prop_assert_eq!(grown.head(), Some(extra));
        prop_assert_eq!(grown.tail(), p.clone());
        prop_assert!(grown.contains(extra));
        for n in &nodes {
            prop_assert!(grown.contains(*n));
        }
    }

    /// `join` concatenates, deduplicating exactly one junction node.
    #[test]
    fn path_vector_join_lengths(a in node_vec(), b in node_vec()) {
        let pa = PathVector::from_nodes(a.clone());
        let pb = PathVector::from_nodes(b.clone());
        let joined = pa.join(&pb);
        let dedup = usize::from(!a.is_empty() && !b.is_empty() && a.last() == b.first());
        prop_assert_eq!(joined.len(), a.len() + b.len() - dedup);
    }

    /// Cost ordering is total and addition is monotone and commutative
    /// (modulo the saturating ∞ behaviour).
    #[test]
    fn cost_arithmetic_properties(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let ca = Cost::new(a);
        let cb = Cost::new(b);
        prop_assert_eq!(ca + cb, cb + ca);
        prop_assert!(ca + cb >= ca);
        prop_assert!(ca + cb >= cb);
        prop_assert!(ca.min(cb) <= ca.max(cb));
        prop_assert!((ca + Cost::INFINITY).is_infinite());
    }

    /// Printing a parsed program and re-parsing it yields the same rules.
    #[test]
    fn parser_display_roundtrip(bound in 1u32..100, seed_rel in "[a-z][a-z0-9]{0,6}") {
        let src = format!(
            r#"
            r1: {rel}(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D), C < {bound}.
            r2: {rel}(@S,D,P,C) :- link(@S,Z,C1), {rel}(@Z,D,P2,C2),
                C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.
            best(@S,D,min<C>) :- {rel}(@S,D,P,C).
            Query: best(@S,D,C).
            "#,
            rel = seed_rel,
            bound = bound
        );
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        prop_assert_eq!(p1.rules.len(), p2.rules.len());
        prop_assert_eq!(p1.queries, p2.queries);
        for (a, b) in p1.rules.iter().zip(p2.rules.iter()) {
            prop_assert_eq!(&a.head, &b.head);
            prop_assert_eq!(a.body.len(), b.body.len());
        }
    }

    /// Naïve and semi-naïve evaluation produce identical path sets on random
    /// graphs (the §3.3 evaluation-strategy ablation).
    #[test]
    fn naive_and_semi_naive_agree(edges in small_graph()) {
        let program = network_reachability();
        let mut semi_db = link_db(&edges);
        let mut naive_db = link_db(&edges);
        Evaluator::new(program.clone()).unwrap().run(&mut semi_db).unwrap();
        Evaluator::with_config(
            program,
            EvalConfig { semi_naive: false, ..EvalConfig::default() },
        )
        .unwrap()
        .run(&mut naive_db)
        .unwrap();
        prop_assert_eq!(semi_db.sorted_tuples("path"), naive_db.sorted_tuples("path"));
    }

    /// Compiled frame-based evaluation ([`RuleEval`]'s slot/plan path) is
    /// result-identical to the retained name-keyed reference path on
    /// randomized rules — arithmetic, comparisons, negation, builtin calls,
    /// constant probes, permuted body orders — over random graphs, both in
    /// full evaluation and for every semi-naïve delta occurrence.
    #[test]
    fn compiled_evaluation_matches_reference(
        edges in small_graph(),
        template in 0usize..4,
        bound in 1u32..15,
        flip_raw in 0usize..2,
    ) {
        use declarative_routing::datalog::eval::{evaluate_rule, evaluate_rule_reference};
        use declarative_routing::datalog::Builtins;

        let flip = flip_raw == 1;
        let k = bound % 6;
        let src = match (template, flip) {
            (0, false) => "r: two(@S,D,C) :- link(@S,Z,C1), link(@Z,D,C2), C = C1 + C2, S != D.".to_string(),
            (0, true) => "r: two(@S,D,C) :- link(@Z,D,C2), link(@S,Z,C1), C = C1 + C2, S != D.".to_string(),
            (1, false) => format!("r: offer(@S,D) :- link(@S,D,C), !deny(@S,D), C < {bound}."),
            (1, true) => format!("r: offer(@S,D) :- C < {bound}, link(@S,D,C), !deny(@S,D)."),
            (2, false) => "r: ext(@S,D,P,C) :- link(@S,Z,C1), path(@Z,D,P2,C2), C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.".to_string(),
            (2, true) => "r: ext(@S,D,P,C) :- path(@Z,D,P2,C2), link(@S,Z,C1), C = C1 + C2, P = f_prepend(S,P2), f_inPath(P2,S) = false.".to_string(),
            (3, false) => format!("r: out(@D,C) :- link(#{k},Z,C1), link(@Z,D,C2), C = C1 + C2."),
            _ => format!("r: out(@D,C) :- link(@Z,D,C2), link(#{k},Z,C1), C = C1 + C2."),
        };

        let builtins = Builtins::standard();
        let mut db = link_db(&edges);
        // Seed `path` with one-hop paths and `deny` with half the edges so
        // the recursion and negation templates have something to join.
        let seed = parse_program("NR1: path(@S,D,P,C) :- link(@S,D,C), P = f_initPath(S,D).").unwrap();
        for t in evaluate_rule(&seed.rules[0], &builtins, &db, None).unwrap() {
            db.insert(t);
        }
        for (i, &(a, b, _)) in edges.iter().enumerate() {
            if i % 2 == 0 {
                db.insert(Tuple::new(
                    "deny",
                    vec![Value::Node(NodeId::new(a)), Value::Node(NodeId::new(b))],
                ));
            }
        }

        let program = parse_program(&src).unwrap();
        let rule = &program.rules[0];
        let mut fast = evaluate_rule(rule, &builtins, &db, None).unwrap();
        let mut slow = evaluate_rule_reference(rule, &builtins, &db, None).unwrap();
        fast.sort();
        slow.sort();
        prop_assert_eq!(fast, slow);

        // Every positive-atom occurrence, fed a partial delta of its relation.
        for (occ, atom) in rule.positive_atoms().iter().enumerate() {
            let tuples = db.tuples(atom.relation.as_str());
            let delta: Vec<Tuple> = tuples.iter().take(tuples.len() / 2 + 1).cloned().collect();
            let mut fast = evaluate_rule(rule, &builtins, &db, Some((occ, &delta))).unwrap();
            let mut slow =
                evaluate_rule_reference(rule, &builtins, &db, Some((occ, &delta))).unwrap();
            fast.sort();
            slow.sort();
            prop_assert_eq!(fast, slow);
        }
    }

    /// The left/right recursion flip (§5.3) preserves best-path answers on
    /// random graphs.
    #[test]
    fn recursion_flip_preserves_best_paths(edges in small_graph()) {
        let right = best_path();
        let left = flip_program_recursion(&right);
        let mut right_db = link_db(&edges);
        let mut left_db = link_db(&edges);
        Evaluator::new(right).unwrap().run(&mut right_db).unwrap();
        Evaluator::new(left).unwrap().run(&mut left_db).unwrap();
        prop_assert_eq!(
            right_db.sorted_tuples("bestPathCost"),
            left_db.sorted_tuples("bestPathCost")
        );
    }

    /// Aggregate selections prune work but never change the best-path costs
    /// (§7.1's correctness requirement).
    #[test]
    fn aggregate_selections_preserve_answers(edges in small_graph()) {
        let mut plain_db = link_db(&edges);
        let mut opt_db = link_db(&edges);
        Evaluator::new(best_path()).unwrap().run(&mut plain_db).unwrap();
        let stats = Evaluator::with_config(
            best_path(),
            EvalConfig { aggregate_selections: true, ..EvalConfig::default() },
        )
        .unwrap()
        .run(&mut opt_db)
        .unwrap();
        prop_assert_eq!(
            plain_db.sorted_tuples("bestPathCost"),
            opt_db.sorted_tuples("bestPathCost")
        );
        prop_assert!(stats.tuples_derived <= plain_db.total_tuples());
    }

    /// The best-path cost between two nodes never exceeds the direct link
    /// cost between them, and equals Dijkstra's answer on the same graph.
    #[test]
    fn best_path_cost_is_optimal(edges in small_graph()) {
        let mut db = link_db(&edges);
        Evaluator::new(best_path()).unwrap().run(&mut db).unwrap();

        // Reference shortest paths via the simulator's Dijkstra.
        let mut topo = declarative_routing::netsim::Topology::new(
            edges.iter().flat_map(|(a, b, _)| [*a as usize + 1, *b as usize + 1]).max().unwrap_or(1),
        );
        for &(a, b, c) in &edges {
            topo.add_bidirectional(
                NodeId::new(a),
                NodeId::new(b),
                declarative_routing::netsim::LinkParams::with_latency_ms(c).with_cost(Cost::new(c)),
            );
        }
        for t in db.tuples("bestPathCost") {
            let entry = CostEntry::from_tuple(&t).expect("bestPathCost is cost-shaped");
            if !entry.cost.is_finite() {
                continue;
            }
            let reference = topo.cost_distances(entry.src).get(&entry.dst).copied();
            prop_assert_eq!(
                Some(entry.cost.value()),
                reference,
                "pair {}->{}",
                entry.src,
                entry.dst
            );
        }
    }

    /// `RouteEntry -> Tuple -> RouteEntry` is the identity for every
    /// well-formed route, whatever the path and cost.
    #[test]
    fn route_entry_tuple_round_trip(
        src in 0u32..50,
        dst in 0u32..50,
        path in node_vec(),
        cost in 0.0f64..1e9,
    ) {
        let entry = RouteEntry {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            path: PathVector::from_nodes(path),
            cost: Cost::new(cost),
        };
        let decoded = RouteEntry::from_tuple(&entry.to_tuple()).unwrap();
        prop_assert_eq!(decoded, entry);
    }

    /// Decoding fails with `Error::Decode` (never panics, never guesses) on
    /// any tuple whose arity is not 4.
    #[test]
    fn route_entry_rejects_wrong_arity(raw_arity in 0usize..7) {
        // Skip over the well-formed arity (4): 0,1,2,3,5,6,7.
        let arity = if raw_arity >= 4 { raw_arity + 1 } else { raw_arity };
        let fields: Vec<Value> = (0..arity).map(|i| Value::Node(NodeId::new(i as u32))).collect();
        let tuple = Tuple::new("bestPath", fields);
        prop_assert!(matches!(RouteEntry::from_tuple(&tuple), Err(Error::Decode(_))));
    }

    /// Decoding fails with `Error::Decode` when any field has the wrong
    /// type, whichever field it is.
    #[test]
    fn route_entry_rejects_type_mismatch(slot in 0usize..4) {
        // Start from a well-formed route tuple, then poison one slot with a
        // value of the wrong type.
        let mut fields = vec![
            Value::Node(NodeId::new(1)),
            Value::Node(NodeId::new(2)),
            Value::Path(PathVector::from_nodes(vec![NodeId::new(1), NodeId::new(2)])),
            Value::Cost(Cost::new(1.0)),
        ];
        fields[slot] = Value::Bool(true);
        let tuple = Tuple::new("bestPath", fields);
        prop_assert!(matches!(RouteEntry::from_tuple(&tuple), Err(Error::Decode(_))));
    }

    /// The cost-shaped view round-trips and rejects the route shape.
    #[test]
    fn cost_entry_tuple_round_trip(src in 0u32..50, dst in 0u32..50, cost in 0.0f64..1e9) {
        let entry = CostEntry {
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            cost: Cost::new(cost),
        };
        let decoded = CostEntry::from_tuple(&entry.to_tuple()).unwrap();
        prop_assert_eq!(decoded, entry);
        // Widening the tuple by one field makes it undecodable again.
        let mut fields = entry.to_tuple().fields().to_vec();
        fields.push(Value::Int(0));
        let widened = Tuple::new("bestPathCost", fields);
        prop_assert!(matches!(CostEntry::from_tuple(&widened), Err(Error::Decode(_))));
    }
}
