//! Workspace-wiring smoke tests: the façade's re-exports resolve to the same
//! crates the workspace builds, and the declarative engine agrees with the
//! hand-coded `dr-baselines` distance-vector protocol on a small ring.

use declarative_routing::baselines::{DistanceVectorConfig, DistanceVectorNode};
use declarative_routing::engine::harness::RoutingHarness;
use declarative_routing::netsim::{LinkParams, SimConfig, SimTime, Simulator, Topology};
use declarative_routing::protocols::best_path;
use declarative_routing::types::{Cost, NodeId};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// A ring of `k` nodes with unit link costs. With odd `k`, every pair has a
/// unique shortest direction, so next hops are unambiguous.
fn ring(k: u32) -> Topology {
    let mut t = Topology::new(k as usize);
    for i in 0..k {
        t.add_bidirectional(
            n(i),
            n((i + 1) % k),
            LinkParams::with_latency_ms(10.0).with_cost(Cost::new(1.0)),
        );
    }
    t
}

/// The façade's re-exported types are the workspace crates' types (not
/// copies): a `dr_types::NodeId` is a `declarative_routing::types::NodeId`.
#[test]
fn facade_reexports_are_the_workspace_crates() {
    let a: dr_types::NodeId = n(3);
    let b: declarative_routing::types::NodeId = dr_types::NodeId::new(3);
    assert_eq!(a, b);
    let c: dr_types::Cost = declarative_routing::types::Cost::new(1.5);
    assert_eq!(c.value(), 1.5);
    // ... including the typed result views and the engine's handle type.
    let route: dr_types::RouteEntry = declarative_routing::types::RouteEntry {
        src: n(0),
        dst: n(1),
        path: declarative_routing::types::PathVector::from_nodes(vec![n(0), n(1)]),
        cost: Cost::new(1.0),
    };
    let _tuple: declarative_routing::types::Tuple = route.to_tuple();
}

/// `best_path()` executed as a distributed query converges to the same
/// routes (cost and next hop) as the hand-coded distance-vector baseline on
/// a 7-node ring.
#[test]
fn best_path_matches_distance_vector_baseline_on_a_ring() {
    const K: u32 = 7;

    // Declarative engine.
    let mut harness = RoutingHarness::new(ring(K));
    let handle = harness.issue(best_path()).from(n(0)).at(SimTime::ZERO).submit().unwrap();
    harness.run_until(SimTime::from_secs(60));
    let results = handle.finite_results(&harness).unwrap();
    assert_eq!(
        results.len(),
        (K * (K - 1)) as usize,
        "declarative best-path must converge to all-pairs routes"
    );

    // Hand-coded distance-vector baseline.
    let apps: Vec<DistanceVectorNode> =
        (0..K).map(|_| DistanceVectorNode::new(DistanceVectorConfig::default())).collect();
    let mut sim = Simulator::new(ring(K), apps, SimConfig::default());
    sim.run_until(SimTime::from_secs(60));

    for src in 0..K {
        let fwd = handle.forwarding_table(&harness, n(src));
        let routes = handle.results_at(&harness, n(src)).unwrap();
        for dst in 0..K {
            if src == dst {
                continue;
            }
            let (dv_next, dv_cost) = sim
                .app(n(src))
                .route_to(n(dst))
                .unwrap_or_else(|| panic!("baseline found no route {src}->{dst}"));
            let declarative_cost = routes
                .iter()
                .find(|r| r.src == n(src) && r.dst == n(dst))
                .map(|r| r.cost)
                .unwrap_or_else(|| panic!("declarative query found no route {src}->{dst}"));
            assert_eq!(
                declarative_cost, dv_cost,
                "cost mismatch for {src}->{dst}: declarative {declarative_cost} vs baseline {dv_cost}"
            );
            assert_eq!(fwd.get(&n(dst)), Some(&dv_next), "next-hop mismatch for {src}->{dst}");
        }
    }
}
